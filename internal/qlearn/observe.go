package qlearn

// Decision explainability: observer hooks that expose what each
// ε-greedy Decide call saw and chose, and what reward the next ACK
// observation realized. Both observers follow the engine's tracer
// discipline — nil by default, one branch on the unobserved path, and
// called synchronously from the simulation goroutine — so the bench
// path stays untouched when nobody is watching (DESIGN.md §11).

// Decision records one Decide call: the probed action set (the base
// station first, then each candidate head in probe order, aligned
// index-for-index with QValues), the greedy argmax, what was actually
// returned, and the V refresh the call applied. EpsRoll is the uniform
// draw compared against ε, or NaN when exploration is disabled (no
// draw was consumed). The Candidates/QValues slices are freshly
// allocated per call; observers may retain them.
type Decision struct {
	Node       int
	Candidates []int
	QValues    []float64
	Greedy     int
	Chosen     int
	Explored   bool
	EpsRoll    float64
	VBefore    float64
	VAfter     float64
}

// DecisionObserver receives one Decision per Decide call.
type DecisionObserver func(Decision)

// SetDecisionObserver installs a decision observer. Passing nil
// disables decision capture.
func (l *Learner) SetDecisionObserver(o DecisionObserver) { l.decObs = o }

// Outcome records one ACK observation as folded into the link
// estimator: the realized reward — Eq. (17)/(19) on success, Eq. (20)
// on failure, evaluated at observation time — and the updated link
// estimate. This is the "reward applied on the next update" for the
// decision that launched the transmission.
type Outcome struct {
	From    int
	To      int
	Success bool
	LinkP   float64
	Reward  float64
}

// OutcomeObserver receives one Outcome per Observe call.
type OutcomeObserver func(Outcome)

// SetOutcomeObserver installs an outcome observer. Passing nil
// disables outcome capture.
func (l *Learner) SetOutcomeObserver(o OutcomeObserver) { l.outObs = o }
