package qlearn_test

import (
	"fmt"
	"log"

	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/network"
	"qlec/internal/qlearn"
)

// Example shows the Algorithm 4 loop: a member decides among heads,
// observes ACKs, and reroutes when its chosen head stops answering.
func Example() {
	pos := []geom.Vec3{
		{X: 100, Y: 100, Z: 0}, // member 0
		{X: 90, Y: 100, Z: 0},  // head 1 (nearest)
		{X: 120, Y: 100, Z: 0}, // head 2
	}
	en := []energy.Joules{5, 5, 5}
	w, err := network.FromPositions(pos, en, geom.Cube(200), geom.Vec3{X: 100, Y: 100, Z: 100})
	if err != nil {
		log.Fatal(err)
	}
	l, err := qlearn.NewLearner(w, energy.DefaultModel(), 4000, qlearn.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	heads := []int{1, 2}
	fmt.Println("initial choice:", l.Decide(0, heads))
	// Head 1 stops ACKing; the link estimate collapses and the member
	// reroutes.
	for i := 0; i < 12; i++ {
		if l.Decide(0, heads) != 1 {
			break
		}
		l.Observe(0, 1, false)
	}
	fmt.Println("after failures:", l.Decide(0, heads))
	// Output:
	// initial choice: 1
	// after failures: 2
}
