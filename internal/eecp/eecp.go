// Package eecp formalizes the paper's §3.4 Energy-Efficient Clustering
// Problem (Definition 1) and provides an exhaustive solver for instances
// small enough to enumerate, so the heuristics can be measured against
// the true optimum of the NP-Complete problem (Theorem 2).
//
// EECP: given nodes with positions and residual energies, partition them
// into k clusters minimizing the average lifespan-decrease function
// f(E_i, d_toCH) over nodes, where d_toCH is each node's distance to its
// cluster head. Theorem 2 reduces the classic k-means problem
// (Definition 2) to EECP by picking f(E, d) = d — this package's tests
// verify that reduction concretely: the EECP optimum under f = d² with
// centroid heads equals the k-means optimum.
package eecp

import (
	"fmt"
	"math"

	"qlec/internal/energy"
	"qlec/internal/geom"
)

// CostFn is the lifespan-decrease function f(E_i(r), d_toCH) of
// Definition 1. d2 is the squared distance to the cluster head (squared
// to avoid needless square roots; take math.Sqrt inside f when the
// objective needs plain distance).
type CostFn func(residual energy.Joules, d2 float64) float64

// DistanceOnly is Theorem 2's reduction choice, f = d_toCH (so EECP
// collapses onto the geometry-only clustering problem).
func DistanceOnly(_ energy.Joules, d2 float64) float64 { return math.Sqrt(d2) }

// SquaredDistance is the k-means objective f = d², used to check the
// reduction against the exhaustive k-means solver.
func SquaredDistance(_ energy.Joules, d2 float64) float64 { return d2 }

// EnergyWeighted is a representative genuinely-energy-aware lifespan
// decrease: transmission cost over residual energy — a node's share of
// lifetime spent per report. Nodes with little energy or long hops decay
// fastest, matching the paper's motivation for LS = 1/f.
func EnergyWeighted(model energy.Model, bits int) CostFn {
	return func(residual energy.Joules, d2 float64) float64 {
		if residual <= 0 {
			return math.Inf(1)
		}
		cost := float64(model.Tx(bits, math.Sqrt(d2)))
		return cost / float64(residual)
	}
}

// HeadMode selects how a cluster's center is chosen.
type HeadMode int

const (
	// CentroidHead uses the geometric centroid (Definition 2's
	// "center"; not necessarily a node).
	CentroidHead HeadMode = iota
	// MedoidHead requires the head to be one of the cluster's nodes
	// (Definition 1's cluster head) and picks the node minimizing the
	// cluster's summed cost.
	MedoidHead
)

// Instance is one EECP problem.
type Instance struct {
	Points   []geom.Vec3
	Residual []energy.Joules
	K        int
	F        CostFn
	Heads    HeadMode
}

// Validate checks instance well-formedness and tractability for the
// exhaustive solver.
func (in *Instance) Validate() error {
	n := len(in.Points)
	if n == 0 {
		return fmt.Errorf("eecp: no points")
	}
	if len(in.Residual) != n {
		return fmt.Errorf("eecp: %d residuals for %d points", len(in.Residual), n)
	}
	if in.K <= 0 || in.K > n {
		return fmt.Errorf("eecp: k=%d outside [1,%d]", in.K, n)
	}
	if in.F == nil {
		return fmt.Errorf("eecp: nil cost function")
	}
	if n > 14 {
		return fmt.Errorf("eecp: exhaustive solver is exponential; %d points exceeds the cap of 14 (Theorem 2: EECP is NP-Complete)", n)
	}
	return nil
}

// Solution is an optimal partition.
type Solution struct {
	// Assign maps each point to a cluster label in [0, K).
	Assign []int
	// Heads holds, per cluster, the medoid node index (MedoidHead) or
	// -1 (CentroidHead).
	Heads []int
	// Cost is the summed f over all nodes (the paper's objective is the
	// average, which differs by the constant 1/n).
	Cost float64
}

// Solve exhaustively enumerates set partitions into at most K labeled-
// canonical clusters and returns the minimum-cost solution.
func Solve(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := len(in.Points)
	assign := make([]int, n)
	best := &Solution{Cost: math.Inf(1)}

	var recurse func(i, used int)
	recurse = func(i, used int) {
		if i == n {
			if used != in.K {
				return
			}
			cost, heads := evaluate(in, assign)
			if cost < best.Cost {
				best.Cost = cost
				best.Assign = append(best.Assign[:0], assign...)
				best.Heads = heads
			}
			return
		}
		// Canonical labeling kills label permutations: point i may only
		// open cluster `used`.
		lim := used
		if lim >= in.K {
			lim = in.K - 1
		}
		for c := 0; c <= lim; c++ {
			assign[i] = c
			next := used
			if c == used {
				next++
			}
			recurse(i+1, next)
		}
	}
	recurse(0, 0)
	if math.IsInf(best.Cost, 1) {
		return nil, fmt.Errorf("eecp: no feasible partition (k=%d, n=%d)", in.K, n)
	}
	return best, nil
}

// evaluate computes the instance cost of an assignment, choosing each
// cluster's head per the head mode.
func evaluate(in *Instance, assign []int) (float64, []int) {
	heads := make([]int, in.K)
	total := 0.0
	for c := 0; c < in.K; c++ {
		var members []int
		for i, a := range assign {
			if a == c {
				members = append(members, i)
			}
		}
		cost, head := clusterCost(in, members)
		total += cost
		heads[c] = head
	}
	return total, heads
}

func clusterCost(in *Instance, members []int) (float64, int) {
	if len(members) == 0 {
		return 0, -1
	}
	switch in.Heads {
	case CentroidHead:
		var ctr geom.Vec3
		for _, i := range members {
			ctr = ctr.Add(in.Points[i])
		}
		ctr = ctr.Scale(1 / float64(len(members)))
		total := 0.0
		for _, i := range members {
			total += in.F(in.Residual[i], in.Points[i].DistSq(ctr))
		}
		return total, -1
	default: // MedoidHead
		best := math.Inf(1)
		bestHead := members[0]
		for _, h := range members {
			total := 0.0
			for _, i := range members {
				total += in.F(in.Residual[i], in.Points[i].DistSq(in.Points[h]))
			}
			if total < best {
				best = total
				bestHead = h
			}
		}
		return best, bestHead
	}
}

// HeuristicCost evaluates a concrete (assignment, heads) produced by any
// heuristic under the instance's objective, for approximation-ratio
// measurements against Solve. heads[c] must be a node index for
// MedoidHead instances; for CentroidHead instances heads is ignored and
// centroids are recomputed from the assignment.
func HeuristicCost(in *Instance, assign []int, heads []int) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	if len(assign) != len(in.Points) {
		return 0, fmt.Errorf("eecp: assignment covers %d of %d points", len(assign), len(in.Points))
	}
	for _, a := range assign {
		if a < 0 || a >= in.K {
			return 0, fmt.Errorf("eecp: label %d outside [0,%d)", a, in.K)
		}
	}
	if in.Heads == CentroidHead {
		cost, _ := evaluate(in, assign)
		return cost, nil
	}
	if len(heads) != in.K {
		return 0, fmt.Errorf("eecp: %d heads for k=%d", len(heads), in.K)
	}
	total := 0.0
	for i, a := range assign {
		h := heads[a]
		if h < 0 || h >= len(in.Points) {
			return 0, fmt.Errorf("eecp: head %d out of range", h)
		}
		total += in.F(in.Residual[i], in.Points[i].DistSq(in.Points[h]))
	}
	return total, nil
}
