package eecp

import (
	"math"
	"testing"

	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/kmeans"
	"qlec/internal/rng"
)

func uniformResiduals(n int) []energy.Joules {
	out := make([]energy.Joules, n)
	for i := range out {
		out[i] = 5
	}
	return out
}

func TestValidate(t *testing.T) {
	pts := geom.Cube(10).SampleUniformN(rng.New(1), 5)
	good := &Instance{Points: pts, Residual: uniformResiduals(5), K: 2, F: DistanceOnly}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Instance{
		{K: 2, F: DistanceOnly},
		{Points: pts, Residual: uniformResiduals(3), K: 2, F: DistanceOnly},
		{Points: pts, Residual: uniformResiduals(5), K: 0, F: DistanceOnly},
		{Points: pts, Residual: uniformResiduals(5), K: 9, F: DistanceOnly},
		{Points: pts, Residual: uniformResiduals(5), K: 2},
		{Points: geom.Cube(10).SampleUniformN(rng.New(1), 20), Residual: uniformResiduals(20), K: 2, F: DistanceOnly},
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}

func TestSolveObviousPartition(t *testing.T) {
	// Two tight pairs far apart: optimal 2-clustering must split them.
	pts := []geom.Vec3{{X: 0}, {X: 1}, {X: 100}, {X: 101}}
	in := &Instance{Points: pts, Residual: uniformResiduals(4), K: 2, F: DistanceOnly, Heads: MedoidHead}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[0] != sol.Assign[1] || sol.Assign[2] != sol.Assign[3] || sol.Assign[0] == sol.Assign[2] {
		t.Fatalf("assignment %v does not split the pairs", sol.Assign)
	}
	// Medoid head of a pair is either node; cost = 1 per pair (one member
	// at distance 1, the head at 0).
	if math.Abs(sol.Cost-2) > 1e-9 {
		t.Fatalf("cost = %v, want 2", sol.Cost)
	}
	for _, h := range sol.Heads {
		if h < 0 || h >= 4 {
			t.Fatalf("bad medoid head %d", h)
		}
	}
}

// Theorem 2's reduction, concretely: the EECP optimum with f = d² and
// centroid heads equals the k-means optimum from the independent
// exhaustive solver in internal/kmeans.
func TestReductionToKMeans(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 8; trial++ {
		pts := geom.Cube(50).SampleUniformN(r, 9)
		in := &Instance{
			Points: pts, Residual: uniformResiduals(9),
			K: 3, F: SquaredDistance, Heads: CentroidHead,
		}
		sol, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		km, err := kmeans.OptimalCost(pts, 3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sol.Cost-km) > 1e-6*(1+km) {
			t.Fatalf("trial %d: EECP(f=d², centroid) = %v but k-means optimum = %v "+
				"(Theorem 2 reduction broken)", trial, sol.Cost, km)
		}
	}
}

// With an energy-aware objective, the optimum must genuinely depend on
// residual energies — the property that makes EECP more than k-means.
// Definition 1's f(E_i, d_toCH) weights each *member's* transmission by
// its own residual energy, so relieving a nearly-drained node of
// transmission (making it the head, d_toCH = 0) becomes optimal even
// when geometry alone would pick a different medoid.
func TestEnergyAwareObjectiveChangesOptimum(t *testing.T) {
	pts := []geom.Vec3{{X: 0}, {X: 10}, {X: 13}}
	model := energy.DefaultModel()
	f := EnergyWeighted(model, 4000)

	balanced := &Instance{
		Points:   pts,
		Residual: []energy.Joules{5, 5, 5},
		K:        1, F: f, Heads: MedoidHead,
	}
	solBalanced, err := Solve(balanced)
	if err != nil {
		t.Fatal(err)
	}
	// Geometry alone: the middle node (1) is the medoid.
	if solBalanced.Heads[0] != 1 {
		t.Fatalf("balanced medoid = %d, want the middle node 1", solBalanced.Heads[0])
	}

	drained := &Instance{
		Points:   pts,
		Residual: []energy.Joules{0.05, 5, 5}, // node 0 nearly dead
		K:        1, F: f, Heads: MedoidHead,
	}
	solDrained, err := Solve(drained)
	if err != nil {
		t.Fatal(err)
	}
	// Any transmission by node 0 now costs ~100× more lifespan; the
	// optimum relieves it by making it the head.
	if solDrained.Heads[0] != 0 {
		t.Fatalf("drained-node medoid = %d, want the drained node 0", solDrained.Heads[0])
	}
}

func TestSolveKEqualsN(t *testing.T) {
	pts := geom.Cube(10).SampleUniformN(rng.New(3), 4)
	in := &Instance{Points: pts, Residual: uniformResiduals(4), K: 4, F: DistanceOnly, Heads: MedoidHead}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Fatalf("singleton clusters cost %v, want 0", sol.Cost)
	}
}

func TestHeuristicCostMatchesEvaluate(t *testing.T) {
	pts := []geom.Vec3{{X: 0}, {X: 1}, {X: 10}, {X: 11}}
	in := &Instance{Points: pts, Residual: uniformResiduals(4), K: 2, F: DistanceOnly, Heads: MedoidHead}
	sol, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// Feeding the optimal solution back through HeuristicCost must give
	// the optimal cost.
	got, err := HeuristicCost(in, sol.Assign, sol.Heads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-sol.Cost) > 1e-12 {
		t.Fatalf("heuristic evaluation %v vs solver %v", got, sol.Cost)
	}
	// Any other partition costs at least as much.
	worse, err := HeuristicCost(in, []int{0, 1, 0, 1}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if worse < sol.Cost-1e-12 {
		t.Fatalf("solver missed a better partition: %v < %v", worse, sol.Cost)
	}
}

func TestHeuristicCostValidation(t *testing.T) {
	pts := []geom.Vec3{{X: 0}, {X: 1}}
	in := &Instance{Points: pts, Residual: uniformResiduals(2), K: 2, F: DistanceOnly, Heads: MedoidHead}
	if _, err := HeuristicCost(in, []int{0}, []int{0, 1}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := HeuristicCost(in, []int{0, 5}, []int{0, 1}); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := HeuristicCost(in, []int{0, 1}, []int{0}); err == nil {
		t.Fatal("short heads accepted")
	}
	if _, err := HeuristicCost(in, []int{0, 1}, []int{0, 9}); err == nil {
		t.Fatal("bad head accepted")
	}
}

// Nearest-head assignment (what the protocols do) is measurably
// near-optimal on tiny instances: approximation ratio under 1.6 when
// heads are chosen greedily by spread.
func TestNearestAssignmentApproximation(t *testing.T) {
	r := rng.New(4)
	worst := 1.0
	for trial := 0; trial < 10; trial++ {
		pts := geom.Cube(60).SampleUniformN(r, 10)
		in := &Instance{Points: pts, Residual: uniformResiduals(10), K: 3, F: DistanceOnly, Heads: MedoidHead}
		opt, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy farthest-point heads + nearest assignment.
		heads := []int{0}
		for len(heads) < 3 {
			far, farD := -1, -1.0
			for i := range pts {
				nearest := math.Inf(1)
				for _, h := range heads {
					nearest = math.Min(nearest, pts[i].DistSq(pts[h]))
				}
				if nearest > farD {
					far, farD = i, nearest
				}
			}
			heads = append(heads, far)
		}
		assign := make([]int, len(pts))
		for i := range pts {
			best, bestD := 0, math.Inf(1)
			for c, h := range heads {
				if d := pts[i].DistSq(pts[h]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
		}
		cost, err := HeuristicCost(in, assign, heads)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Cost > 0 {
			ratio := cost / opt.Cost
			if ratio > worst {
				worst = ratio
			}
		}
	}
	if worst > 2.2 {
		t.Fatalf("greedy nearest-head approximation ratio %v too large", worst)
	}
}

func BenchmarkSolve10(b *testing.B) {
	pts := geom.Cube(60).SampleUniformN(rng.New(5), 10)
	in := &Instance{Points: pts, Residual: uniformResiduals(10), K: 3, F: DistanceOnly, Heads: MedoidHead}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}
