package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Sample variance with n-1: Σ(x−5)² = 32, /7.
	if math.Abs(s.Variance-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", s.Variance)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.StdDev != 0 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeNumericallyStable(t *testing.T) {
	// Large offset with tiny variance — the naive Σx² formula fails here.
	base := 1e9
	xs := []float64{base + 1, base + 2, base + 3}
	s := Summarize(xs)
	if math.Abs(s.Variance-1) > 1e-6 {
		t.Fatalf("Variance = %v, want 1 (catastrophic cancellation?)", s.Variance)
	}
}

func TestCI95HalfWidth(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	want := 1.96 * s.StdDev / 2
	if math.Abs(s.CI95HalfWidth()-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", s.CI95HalfWidth(), want)
	}
	if Summarize([]float64{1}).CI95HalfWidth() != 0 {
		t.Fatal("CI for n=1 should be 0")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	cv := CoefficientOfVariation([]float64{10, 10, 10})
	if cv != 0 {
		t.Fatalf("CV of constant sample = %v", cv)
	}
	if !math.IsNaN(CoefficientOfVariation([]float64{-1, 1})) {
		t.Fatal("CV with zero mean should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("singleton quantile = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, tc := range []struct {
		xs []float64
		q  float64
	}{{nil, 0.5}, {[]float64{1}, -0.1}, {[]float64{1}, 1.1}, {[]float64{1}, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Quantile(%v, %v) did not panic", tc.xs, tc.q)
				}
			}()
			Quantile(tc.xs, tc.q)
		}()
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if _, seen := e.Value(); seen {
		t.Fatal("fresh EWMA reports a value")
	}
	if got := e.ValueOr(0.9); got != 0.9 {
		t.Fatalf("ValueOr default = %v", got)
	}
	e.Observe(1)
	if v, _ := e.Value(); v != 1 {
		t.Fatalf("first observation = %v", v)
	}
	e.Observe(0)
	if v, _ := e.Value(); v != 0.5 {
		t.Fatalf("after decay = %v", v)
	}
	e.Observe(0)
	if v, _ := e.Value(); v != 0.25 {
		t.Fatalf("after second decay = %v", v)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Observe(0.75)
	}
	if v, _ := e.Value(); math.Abs(v-0.75) > 1e-9 {
		t.Fatalf("EWMA of constant stream = %v", v)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 50} {
		h.Observe(x)
	}
	if h.Under() != 1 || h.Over() != 2 || h.Total() != 8 {
		t.Fatalf("under=%d over=%d total=%d", h.Under(), h.Over(), h.Total())
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range h.Counts() {
		if c != want[i] {
			t.Fatalf("bin %d = %d, want %d (all %v)", i, c, want[i], h.Counts())
		}
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Fatalf("BinCenter(4) = %v", got)
	}
}

func TestHistogramEdgeAtHi(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Observe(math.Nextafter(1, 0)) // just under hi must not panic
	if got := h.Counts()[2]; got != 1 {
		t.Fatalf("edge observation landed in %v", h.Counts())
	}
}

func TestHistogramPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero bins accepted")
			}
		}()
		NewHistogram(0, 1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("inverted range accepted")
			}
		}()
		NewHistogram(1, 1, 4)
	}()
}

// Property: Welford mean matches the naive sum for well-scaled data,
// and min <= mean <= max.
func TestSummarizeQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		naive := 0.0
		for i, v := range raw {
			xs[i] = float64(v)
			naive += float64(v)
		}
		s := Summarize(xs)
		if math.Abs(s.Mean-naive/float64(len(xs))) > 1e-9 {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []int8, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q1 := float64(a) / 255
		q2 := float64(b) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
