package stats

import (
	"math"
	"testing"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

func uniformField(seed uint64, n int, value func(p geom.Vec3, r *rng.Stream) float64) SpatialField {
	r := rng.New(seed)
	box := geom.Cube(100)
	pts := box.SampleUniformN(r, n)
	vals := make([]float64, n)
	for i, p := range pts {
		vals[i] = value(p, r)
	}
	return SpatialField{Points: pts, Values: vals}
}

func TestSpatialFieldValidate(t *testing.T) {
	f := SpatialField{Points: []geom.Vec3{{}}, Values: []float64{1, 2}}
	if err := f.Validate(); err == nil {
		t.Fatal("mismatched field validated")
	}
	empty := SpatialField{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty field validated")
	}
}

func TestBinnedCVDistinguishesEvenFromHotspot(t *testing.T) {
	box := geom.Cube(100)
	even := uniformField(1, 4000, func(p geom.Vec3, r *rng.Stream) float64 {
		return 0.5 + 0.01*r.NormFloat64() // spatially flat
	})
	hot := uniformField(2, 4000, func(p geom.Vec3, r *rng.Stream) float64 {
		// Consumption concentrated near the origin corner.
		return math.Exp(-p.Norm() / 30)
	})
	cvEven, err := even.BinnedCV(box, 4)
	if err != nil {
		t.Fatal(err)
	}
	cvHot, err := hot.BinnedCV(box, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cvEven >= cvHot {
		t.Fatalf("BinnedCV failed to separate even (%v) from hotspot (%v)", cvEven, cvHot)
	}
	if cvEven > 0.1 {
		t.Fatalf("even field CV too high: %v", cvEven)
	}
}

func TestBinnedCVValidation(t *testing.T) {
	f := uniformField(3, 100, func(geom.Vec3, *rng.Stream) float64 { return 1 })
	if _, err := f.BinnedCV(geom.Cube(100), 0); err == nil {
		t.Fatal("side=0 accepted")
	}
	bad := SpatialField{Points: []geom.Vec3{{}}, Values: nil}
	if _, err := bad.BinnedCV(geom.Cube(100), 4); err == nil {
		t.Fatal("invalid field accepted")
	}
}

func TestMoranIDetectsClustering(t *testing.T) {
	box := geom.Cube(100)
	_ = box
	clustered := uniformField(4, 800, func(p geom.Vec3, r *rng.Stream) float64 {
		// Smooth spatial gradient → strong positive autocorrelation.
		return p.X / 100
	})
	random := uniformField(5, 800, func(p geom.Vec3, r *rng.Stream) float64 {
		return r.Float64()
	})
	iClustered, err := clustered.MoranI(25)
	if err != nil {
		t.Fatal(err)
	}
	iRandom, err := random.MoranI(25)
	if err != nil {
		t.Fatal(err)
	}
	if iClustered < 0.3 {
		t.Fatalf("Moran's I for gradient field = %v, want strongly positive", iClustered)
	}
	if math.Abs(iRandom) > 0.1 {
		t.Fatalf("Moran's I for random field = %v, want ~0", iRandom)
	}
}

func TestMoranIErrors(t *testing.T) {
	constant := SpatialField{
		Points: []geom.Vec3{{X: 1}, {X: 2}},
		Values: []float64{3, 3},
	}
	if _, err := constant.MoranI(10); err == nil {
		t.Fatal("constant field accepted")
	}
	far := SpatialField{
		Points: []geom.Vec3{{X: 0}, {X: 1000}},
		Values: []float64{1, 2},
	}
	if _, err := far.MoranI(1); err == nil {
		t.Fatal("no neighbour pairs accepted")
	}
	f := uniformField(6, 10, func(geom.Vec3, *rng.Stream) float64 { return 1 })
	if _, err := f.MoranI(0); err == nil {
		t.Fatal("zero radius accepted")
	}
}

func TestGiniCoefficient(t *testing.T) {
	g, err := GiniCoefficient([]float64{1, 1, 1, 1})
	if err != nil || math.Abs(g) > 1e-12 {
		t.Fatalf("Gini of equal values = %v, %v", g, err)
	}
	// All value at one holder: Gini → (n-1)/n = 0.75 for n=4.
	g, err = GiniCoefficient([]float64{0, 0, 0, 8})
	if err != nil || math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("Gini of concentrated values = %v, %v", g, err)
	}
	if _, err := GiniCoefficient(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := GiniCoefficient([]float64{-1, 2}); err == nil {
		t.Fatal("negative value accepted")
	}
	g, err = GiniCoefficient([]float64{0, 0})
	if err != nil || g != 0 {
		t.Fatalf("Gini of all-zero = %v, %v", g, err)
	}
}

func BenchmarkBinnedCV(b *testing.B) {
	f := uniformField(7, 2896, func(p geom.Vec3, r *rng.Stream) float64 { return r.Float64() })
	box := geom.Cube(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.BinnedCV(box, 6); err != nil {
			b.Fatal(err)
		}
	}
}
