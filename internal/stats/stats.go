// Package stats supplies the numeric tooling the QLEC reproduction needs:
// descriptive statistics with confidence intervals for multi-seed
// experiment replication, exponentially weighted moving averages for the
// link-quality estimator of §4.2, histograms, and spatial-uniformity
// measures (coefficient of variation over bins, Moran's I) used to back
// Figure 4's claim that QLEC spreads energy consumption evenly.
//
// The reproduction band for this paper flags "weak numeric/plotting
// tooling" as the main risk, so this package is deliberately
// self-contained and heavily tested.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
	StdDev   float64
	Min, Max float64
}

// Summarize computes descriptive statistics using Welford's online
// algorithm (numerically stable for long accumulations). An empty input
// yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	var m, m2 float64
	for i, x := range xs {
		s.N = i + 1
		delta := x - m
		m += delta / float64(s.N)
		m2 += delta * (x - m)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	if s.N == 0 {
		return Summary{}
	}
	s.Mean = m
	if s.N > 1 {
		s.Variance = m2 / float64(s.N-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// StdDev returns the sample standard deviation, or 0 for n < 2.
func StdDev(xs []float64) float64 { return Summarize(xs).StdDev }

// CoefficientOfVariation returns stddev/mean. It returns NaN when the
// mean is zero (undefined), matching statistical convention.
func CoefficientOfVariation(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		return math.NaN()
	}
	return s.StdDev / s.Mean
}

// CI95HalfWidth returns the half-width of a normal-approximation 95 %
// confidence interval for the mean (1.96·s/√n). It returns 0 for n < 2.
func (s Summary) CI95HalfWidth() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It panics on an empty sample or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: Quantile q=%v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// EWMA is an exponentially weighted moving average. QLEC's link-quality
// estimator (§4.2: "the link probability can be estimated by the ratio
// between the successfully transmitted packets and all the packets sent
// recently") is implemented as an EWMA of success indicators so old
// history decays.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent observations more. Panics outside (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if !(alpha > 0 && alpha <= 1) {
		panic(fmt.Sprintf("stats: EWMA alpha %v outside (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average. The first observation initializes
// the value directly.
func (e *EWMA) Observe(x float64) {
	if !e.seen {
		e.value = x
		e.seen = true
		return
	}
	e.value += e.alpha * (x - e.value)
}

// Value returns the current average and whether any observation was made.
func (e *EWMA) Value() (float64, bool) { return e.value, e.seen }

// ValueOr returns the current average, or def before any observation.
func (e *EWMA) ValueOr(def float64) float64 {
	if !e.seen {
		return def
	}
	return e.value
}

// Histogram is a fixed-range, equal-width histogram.
type Histogram struct {
	lo, hi  float64
	counts  []int
	under   int
	over    int
	total   int
	samples float64
}

// NewHistogram returns a histogram over [lo, hi) with the given number of
// equal-width bins. Panics on bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: histogram range [%v, %v) is empty", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// Observe adds x. Values outside [lo, hi) land in underflow/overflow.
func (h *Histogram) Observe(x float64) {
	h.total++
	h.samples += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int(float64(len(h.counts)) * (x - h.lo) / (h.hi - h.lo))
		if i == len(h.counts) { // guard float round-up at the edge
			i--
		}
		h.counts[i]++
	}
}

// Counts returns the per-bin counts (shared slice; do not mutate).
func (h *Histogram) Counts() []int { return h.counts }

// Under and Over return the out-of-range tallies.
func (h *Histogram) Under() int { return h.under }

// Over returns the overflow tally.
func (h *Histogram) Over() int { return h.over }

// Total returns the number of observations, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + w*(float64(i)+0.5)
}
