package stats

import (
	"fmt"
	"math"
	"sort"

	"qlec/internal/geom"
)

// SpatialField pairs sample locations with scalar values — e.g. node
// positions with per-node energy-consumption rates (Figure 4).
type SpatialField struct {
	Points []geom.Vec3
	Values []float64
}

// Validate checks structural consistency.
func (f SpatialField) Validate() error {
	if len(f.Points) != len(f.Values) {
		return fmt.Errorf("stats: %d points but %d values", len(f.Points), len(f.Values))
	}
	if len(f.Points) == 0 {
		return fmt.Errorf("stats: empty spatial field")
	}
	return nil
}

// BinnedCV partitions the bounding box into side³ cubic bins, averages
// the field inside each non-empty bin, and returns the coefficient of
// variation of those bin means. A spatially even field (Figure 4's claim
// for QLEC: "nodes with high energy consumption rate are evenly
// distributed") has a low BinnedCV; hot spots inflate it.
func (f SpatialField) BinnedCV(box geom.AABB, side int) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if side <= 0 {
		return 0, fmt.Errorf("stats: BinnedCV side must be positive, got %d", side)
	}
	if err := box.Validate(); err != nil {
		return 0, err
	}
	sums := make([]float64, side*side*side)
	counts := make([]int, side*side*side)
	size := box.Size()
	for i, p := range f.Points {
		cx := clampIdx(int(float64(side)*(p.X-box.Min.X)/size.X), side)
		cy := clampIdx(int(float64(side)*(p.Y-box.Min.Y)/size.Y), side)
		cz := clampIdx(int(float64(side)*(p.Z-box.Min.Z)/size.Z), side)
		c := (cz*side+cy)*side + cx
		sums[c] += f.Values[i]
		counts[c]++
	}
	var means []float64
	for c, n := range counts {
		if n > 0 {
			means = append(means, sums[c]/float64(n))
		}
	}
	if len(means) < 2 {
		return 0, nil
	}
	return CoefficientOfVariation(means), nil
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// MoranI computes Moran's I spatial autocorrelation statistic with
// inverse-distance weights truncated at the given neighbourhood radius.
// Values near 0 indicate no spatial autocorrelation (consumption evenly
// scattered); values near +1 indicate clustering of similar values (hot
// spots); negative values indicate dispersion (checkerboarding).
//
//	I = (n / W) · Σᵢⱼ wᵢⱼ (xᵢ−x̄)(xⱼ−x̄) / Σᵢ (xᵢ−x̄)²
//
// It returns an error when the field is degenerate (no variance, no
// neighbour pairs inside the radius).
func (f SpatialField) MoranI(radius float64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if !(radius > 0) {
		return 0, fmt.Errorf("stats: MoranI radius must be positive, got %v", radius)
	}
	n := len(f.Points)
	mean := Mean(f.Values)
	var denom float64
	for _, v := range f.Values {
		d := v - mean
		denom += d * d
	}
	if denom == 0 {
		return 0, fmt.Errorf("stats: MoranI undefined for constant field")
	}
	var num, wSum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := f.Points[i].Dist(f.Points[j])
			if d > radius || d == 0 {
				continue
			}
			w := 1 / d
			wSum += w
			num += w * (f.Values[i] - mean) * (f.Values[j] - mean)
		}
	}
	if wSum == 0 {
		return 0, fmt.Errorf("stats: MoranI has no neighbour pairs within radius %v", radius)
	}
	return float64(n) / wSum * num / denom, nil
}

// GiniCoefficient returns the Gini inequality index of the (non-negative)
// values: 0 means perfectly even consumption across nodes, 1 maximal
// concentration. Used as a scalar companion to Figure 4.
func GiniCoefficient(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("stats: Gini of empty sample")
	}
	sorted := append([]float64(nil), values...)
	for _, v := range sorted {
		if v < 0 || math.IsNaN(v) {
			return 0, fmt.Errorf("stats: Gini requires non-negative values, got %v", v)
		}
	}
	sort.Float64s(sorted)
	var cum, total float64
	n := float64(len(sorted))
	for i, v := range sorted {
		cum += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return 0, nil
	}
	return (2*cum/(n*total) - (n+1)/n), nil
}
