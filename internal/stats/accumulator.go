package stats

import "math"

// Accumulator is an online (Welford) mean/variance accumulator for
// streams too large to buffer — per-packet latencies in long simulation
// runs, for example.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe folds x into the accumulator.
func (a *Accumulator) Observe(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the observation count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or 0 before any observation.
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the sample standard deviation, or 0 for n < 2.
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min returns the smallest observation, or 0 before any observation.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 before any observation.
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds another accumulator into this one using the parallel
// Welford combination (Chan et al. 1979), as if every observation of b
// had been Observed after a's. The simulator's parallel round kernel
// merges per-lane accumulators with it; merging in a fixed lane order
// keeps the floating-point result deterministic.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	a.n = n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// Summary converts the accumulator into a Summary.
func (a *Accumulator) Summary() Summary {
	s := Summary{N: a.n, Mean: a.mean, Min: a.min, Max: a.max}
	if a.n > 1 {
		s.Variance = a.m2 / float64(a.n-1)
		s.StdDev = math.Sqrt(s.Variance)
	}
	return s
}
