package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorMatchesSummarize(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var a Accumulator
	for _, x := range xs {
		a.Observe(x)
	}
	want := Summarize(xs)
	got := a.Summary()
	if got.N != want.N || math.Abs(got.Mean-want.Mean) > 1e-12 ||
		math.Abs(got.Variance-want.Variance) > 1e-12 ||
		got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("accumulator %+v vs summarize %+v", got, want)
	}
	if a.N() != 8 || a.Min() != 1 || a.Max() != 9 {
		t.Fatalf("accessors: n=%d min=%v max=%v", a.N(), a.Min(), a.Max())
	}
	if math.Abs(a.StdDev()-want.StdDev) > 1e-12 {
		t.Fatalf("stddev %v vs %v", a.StdDev(), want.StdDev)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.StdDev() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatal("zero-value accumulator not neutral")
	}
	s := a.Summary()
	if s.N != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Observe(-7)
	if a.Mean() != -7 || a.Min() != -7 || a.Max() != -7 || a.StdDev() != 0 {
		t.Fatalf("single observation: mean=%v min=%v max=%v", a.Mean(), a.Min(), a.Max())
	}
}

// Property: accumulator agrees with batch Summarize on arbitrary input.
func TestAccumulatorQuick(t *testing.T) {
	f := func(raw []int16) bool {
		var a Accumulator
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			a.Observe(xs[i])
		}
		want := Summarize(xs)
		got := a.Summary()
		if got.N != want.N {
			return false
		}
		if got.N == 0 {
			return true
		}
		return math.Abs(got.Mean-want.Mean) < 1e-9 &&
			math.Abs(got.Variance-want.Variance) < 1e-6 &&
			got.Min == want.Min && got.Max == want.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
