// Package cli holds the small amount of plumbing the command-line
// tools share: a signal-aware root context with an optional deadline,
// and a throttled single-line stderr progress meter. It exists so that
// every tool gets identical Ctrl-C semantics — first SIGINT cancels
// the run (tools then print whatever partial results they hold),
// second SIGINT exits immediately.
package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// Context returns the root context for a command-line run. A positive
// timeout arms a deadline. The first SIGINT/SIGTERM cancels the
// context and prints a note that a second one force-quits; a second
// signal exits with status 130 without waiting for cleanup.
//
// The returned stop function releases the signal handler; defer it
// from main.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	var cancelTimeout context.CancelFunc = func() {}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	ctx, cancel := context.WithCancel(ctx)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-sigs:
			fmt.Fprintln(os.Stderr, "\ninterrupted; finishing current round (interrupt again to quit now)")
			cancel()
		case <-ctx.Done():
			return
		}
		<-sigs
		fmt.Fprintln(os.Stderr, "killed")
		os.Exit(130)
	}()

	stop := func() {
		signal.Stop(sigs)
		cancel()
		cancelTimeout()
	}
	return ctx, stop
}

// Meter is a throttled single-line progress display. Writes rewrite
// the same terminal line (carriage return, no newline) at most once
// per interval, plus always the final update; Close erases the line.
// Safe for concurrent use — sweep progress callbacks fire from worker
// goroutines.
type Meter struct {
	mu    sync.Mutex
	w     io.Writer
	last  time.Time
	every time.Duration
	width int
	done  bool
}

// NewMeter writes progress to w (normally os.Stderr) at most every
// 100 ms.
func NewMeter(w io.Writer) *Meter {
	return &Meter{w: w, every: 100 * time.Millisecond}
}

// Printf rewrites the meter line. Calls landing inside the throttle
// window are dropped unless force is set (use force for the final
// update so the display always ends accurate).
func (m *Meter) Printf(force bool, format string, args ...any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return
	}
	now := time.Now()
	if !force && now.Sub(m.last) < m.every {
		return
	}
	m.last = now
	line := fmt.Sprintf(format, args...)
	pad := m.width - len(line)
	if pad < 0 {
		pad = 0
	}
	m.width = len(line)
	fmt.Fprintf(m.w, "\r%s%*s", line, pad, "")
}

// Close erases the progress line so subsequent output starts clean.
func (m *Meter) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return
	}
	m.done = true
	if m.width > 0 {
		fmt.Fprintf(m.w, "\r%*s\r", m.width, "")
	}
}

// SweepProgress returns a progress callback that drives the meter with
// a "label done/total" line. Pass it to experiment Config.Progress or
// runner.Options.Progress.
func (m *Meter) SweepProgress(label string) func(done, total int) {
	return func(done, total int) {
		m.Printf(done == total, "%s %d/%d", label, done, total)
	}
}

// Reader wraps r so each Read first checks ctx: once the context is
// cancelled the next Read returns ctx.Err(). It lets tools that stream
// from a pipe (e.g. qlectrace on stdin) honour Ctrl-C between reads
// even when the producer stalls mid-stream.
func Reader(ctx context.Context, r io.Reader) io.Reader {
	return &ctxReader{ctx: ctx, r: r}
}

type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}
