package cli

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestContextTimeout(t *testing.T) {
	ctx, stop := Context(10 * time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("deadline never fired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v", ctx.Err())
	}
}

func TestContextStopReleases(t *testing.T) {
	ctx, stop := Context(0)
	stop()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("stop did not cancel: %v", ctx.Err())
	}
}

func TestMeterThrottlesAndForces(t *testing.T) {
	var buf strings.Builder
	m := NewMeter(&buf)
	m.Printf(false, "a 1")
	m.Printf(false, "a 2") // inside the throttle window: dropped
	m.Printf(true, "a 3")  // forced: always written
	m.Close()
	out := buf.String()
	if !strings.Contains(out, "a 1") || !strings.Contains(out, "a 3") {
		t.Fatalf("meter output %q", out)
	}
	if strings.Contains(out, "a 2") {
		t.Fatalf("throttled write leaked: %q", out)
	}
	// Close erased the line and further writes are no-ops.
	m.Printf(true, "late")
	if strings.Contains(buf.String(), "late") {
		t.Fatal("write after Close")
	}
}

func TestSweepProgressEndsAccurate(t *testing.T) {
	var buf strings.Builder
	m := NewMeter(&buf)
	p := m.SweepProgress("cells")
	for i := 1; i <= 50; i++ {
		p(i, 50)
	}
	if !strings.Contains(buf.String(), "cells 50/50") {
		t.Fatalf("final update missing: %q", buf.String())
	}
}

func TestReaderHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Reader(ctx, strings.NewReader("hello world"))
	buf := make([]byte, 5)
	if n, err := r.Read(buf); err != nil || n != 5 {
		t.Fatalf("read before cancel: %d, %v", n, err)
	}
	cancel()
	if _, err := r.Read(buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("read after cancel: %v", err)
	}
}

func TestReaderPassesEOF(t *testing.T) {
	r := Reader(context.Background(), strings.NewReader(""))
	if _, err := r.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
}
