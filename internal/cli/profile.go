package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile holds the -cpuprofile/-memprofile flag values shared by every
// command-line tool. Register the flags with ProfileFlags, bracket the
// work with Start/Stop:
//
//	prof := cli.ProfileFlags(flag.CommandLine)
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
//
// The resulting files load directly into `go tool pprof`.
type Profile struct {
	cpuPath   string
	memPath   string
	blockPath string
	mutexPath string
	goroPath  string
	cpuFile   *os.File
}

// ProfileFlags registers -cpuprofile, -memprofile, -blockprofile,
// -mutexprofile and -goroutineprofile on fs and returns the Profile
// that will honour them.
func ProfileFlags(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.memPath, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.blockPath, "blockprofile", "", "write a blocking profile to this file on exit (enables block profiling)")
	fs.StringVar(&p.mutexPath, "mutexprofile", "", "write a mutex-contention profile to this file on exit (enables mutex profiling)")
	fs.StringVar(&p.goroPath, "goroutineprofile", "", "write a goroutine profile to this file on exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given and arms the
// block/mutex profilers when their flags were given. Call after flag
// parsing; a failure to open or start is returned so the tool can
// abort before doing real work with a half-configured profiler.
func (p *Profile) Start() error {
	if p.blockPath != "" {
		// Rate 1 records every blocking event; fine for offline tools.
		runtime.SetBlockProfileRate(1)
	}
	if p.mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, if either
// was requested. Profiling errors at shutdown are reported on stderr
// rather than returned — the tool's real output is already complete.
func (p *Profile) Stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		} else {
			runtime.GC() // materialize a settled heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}
	writeLookup(p.blockPath, "block", "blockprofile")
	writeLookup(p.mutexPath, "mutex", "mutexprofile")
	writeLookup(p.goroPath, "goroutine", "goroutineprofile")
}

// writeLookup snapshots one named runtime profile to path (pprof
// binary format, debug=0) when path is non-empty.
func writeLookup(path, kind, flagName string) {
	if path == "" {
		return
	}
	prof := pprof.Lookup(kind)
	if prof == nil {
		fmt.Fprintf(os.Stderr, "%s: no %q profile in this runtime\n", flagName, kind)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flagName, err)
		return
	}
	defer f.Close()
	if err := prof.WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flagName, err)
	}
}
