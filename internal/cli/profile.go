package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile holds the -cpuprofile/-memprofile flag values shared by every
// command-line tool. Register the flags with ProfileFlags, bracket the
// work with Start/Stop:
//
//	prof := cli.ProfileFlags(flag.CommandLine)
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
//
// The resulting files load directly into `go tool pprof`.
type Profile struct {
	cpuPath string
	memPath string
	cpuFile *os.File
}

// ProfileFlags registers -cpuprofile and -memprofile on fs and returns
// the Profile that will honour them.
func ProfileFlags(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.memPath, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag parsing; a failure to open or start is returned so the tool can
// abort before doing real work with a half-configured profiler.
func (p *Profile) Start() error {
	if p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cpuprofile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, if either
// was requested. Profiling errors at shutdown are reported on stderr
// rather than returned — the tool's real output is already complete.
func (p *Profile) Stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		}
		p.cpuFile = nil
	}
	if p.memPath == "" {
		return
	}
	f, err := os.Create(p.memPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize a settled heap before snapshotting
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
	}
}
