package cli

import (
	"flag"
	"io"
	"log/slog"
	"os"

	"qlec/internal/obs"
)

// LogConfig holds the -log-level/-log-format flag values shared by
// every command-line tool. Register with LogFlags, build the logger
// after flag parsing with Setup:
//
//	lc := cli.LogFlags(flag.CommandLine)
//	flag.Parse()
//	logger, err := lc.Setup(os.Stderr)
//
// Setup also installs the logger as the slog default, so library code
// using slog.Default participates.
type LogConfig struct {
	level  string
	format string
}

// LogFlags registers -log-level and -log-format on fs and returns the
// LogConfig that will honour them.
func LogFlags(fs *flag.FlagSet) *LogConfig {
	c := &LogConfig{}
	fs.StringVar(&c.level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&c.format, "log-format", "text", "log format: text or json")
	return c
}

// Setup builds the slog.Logger the flags describe, writing to w
// (normally os.Stderr so data output on stdout stays clean), and makes
// it the process default.
func (c *LogConfig) Setup(w io.Writer) (*slog.Logger, error) {
	level, err := obs.ParseLevel(c.level)
	if err != nil {
		return nil, err
	}
	logger, err := obs.NewLogger(w, level, c.format)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}

// MustSetup is Setup with flag-style error handling: invalid values
// print to stderr and exit 2, matching flag.ExitOnError semantics.
func (c *LogConfig) MustSetup(w io.Writer) *slog.Logger {
	logger, err := c.Setup(w)
	if err != nil {
		io.WriteString(os.Stderr, err.Error()+"\n")
		os.Exit(2)
	}
	return logger
}
