package cli

// Protocol-registry plumbing shared by the command-line tools: resolve
// a -protocol argument against the plugin registry (with a
// nearest-match suggestion on typos) and render the roster for
// -list-protocols.

import (
	"fmt"
	"sort"
	"strings"

	"qlec/internal/protocol"
	_ "qlec/internal/protocol/all" // register every protocol
)

// ResolveProtocol maps any accepted spelling of a protocol name — a
// canonical id or an alias, case-insensitively — to its canonical
// registry id. Unknown names error with the nearest valid id.
func ResolveProtocol(name string) (string, error) {
	if d, ok := protocol.Lookup(name); ok {
		return d.ID, nil
	}
	if near := protocol.Nearest(name); near != "" {
		return "", fmt.Errorf("unknown protocol %q (did you mean %q? -list-protocols shows the registry)", name, near)
	}
	return "", fmt.Errorf("unknown protocol %q", name)
}

// ProtocolIDs returns the comma-joined canonical ids, for flag usage
// strings.
func ProtocolIDs() string {
	return strings.Join(protocol.IDs(), ", ")
}

// FormatProtocols renders the registry roster as a fixed-width table:
// one row per registered protocol with its aliases, paper reference
// and default parameters.
func FormatProtocols() string {
	var b strings.Builder
	header := fmt.Sprintf("%-14s %-24s %-8s %s", "id", "aliases", "kind", "paper / defaults")
	b.WriteString(header + "\n")
	b.WriteString(strings.Repeat("-", len(header)) + "\n")
	for _, d := range protocol.All() {
		kind := "paper"
		if d.Ablation {
			kind = "ablation"
		}
		detail := d.Paper
		if len(d.DefaultParams) > 0 {
			keys := make([]string, 0, len(d.DefaultParams))
			for k := range d.DefaultParams {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var params []string
			for _, k := range keys {
				params = append(params, fmt.Sprintf("%s=%v", k, d.DefaultParams[k]))
			}
			if detail != "" {
				detail += "; "
			}
			detail += strings.Join(params, " ")
		}
		fmt.Fprintf(&b, "%-14s %-24s %-8s %s\n", d.ID, strings.Join(d.Aliases, ","), kind, detail)
	}
	return b.String()
}
