// Package packet models the data units and the bounded forwarding queues
// of the QLEC simulator.
//
// The paper's §4.2/§5.2 attribute packet loss to "poor communication
// environment or limited storage caches of cluster heads": a cluster head
// that receives member traffic faster than it can serialize it onto the
// radio drops the overflow. That queueing behaviour is what bends the
// packet-delivery-rate curves in Figure 3(a), so it is modelled explicitly
// here rather than folded into a loss constant.
package packet

import "fmt"

// ID uniquely identifies a packet within one simulation run.
type ID uint64

// Packet is one sensing report travelling from a source node toward the
// base station, possibly relayed through a cluster head.
type Packet struct {
	ID     ID
	Source int     // node index that generated the packet
	Bits   int     // payload size in bits
	Born   float64 // simulation time of generation (seconds)
	// Hops counts radio transmissions so far (member→CH = 1, CH→BS = 2;
	// the FCM baseline's multi-hop routing produces larger values).
	Hops int
}

// Queue is a bounded FIFO of packets, as held by a cluster head awaiting
// the end-of-round aggregation, or by a relay awaiting a send slot.
// A zero-capacity queue drops everything.
//
// Storage is a fixed-size ring allocated lazily on the first accepted
// push and retained across Reset, so a queue recycled round after round
// (the simulator pools head queues) performs no steady-state allocation.
type Queue struct {
	cap     int
	buf     []Packet // ring storage; len(buf) == cap once allocated
	head    int      // index of the oldest packet
	n       int      // number of queued packets
	dropped int
	pushed  int
}

// NewQueue returns a queue with the given capacity. It panics on negative
// capacity (a configuration error).
func NewQueue(capacity int) *Queue {
	if capacity < 0 {
		panic(fmt.Sprintf("packet: negative queue capacity %d", capacity))
	}
	return &Queue{cap: capacity}
}

// Cap returns the queue's capacity.
func (q *Queue) Cap() int { return q.cap }

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.n }

// Free returns the remaining space.
func (q *Queue) Free() int { return q.cap - q.n }

// Dropped returns how many packets were rejected for lack of space.
func (q *Queue) Dropped() int { return q.dropped }

// Pushed returns how many packets were offered (accepted + dropped).
func (q *Queue) Pushed() int { return q.pushed }

// Push offers a packet to the queue. It returns false — and counts a
// drop — when the queue is full.
func (q *Queue) Push(p Packet) bool {
	q.pushed++
	if q.n >= q.cap {
		q.dropped++
		return false
	}
	if q.buf == nil {
		q.buf = make([]Packet, q.cap)
	}
	i := q.head + q.n
	if i >= q.cap {
		i -= q.cap
	}
	q.buf[i] = p
	q.n++
	return true
}

// Pop removes and returns the oldest packet. ok is false when empty.
func (q *Queue) Pop() (p Packet, ok bool) {
	if q.n == 0 {
		return Packet{}, false
	}
	p = q.buf[q.head]
	q.head++
	if q.head >= q.cap {
		q.head = 0
	}
	q.n--
	return p, true
}

// DrainAll removes and returns every queued packet in FIFO order.
func (q *Queue) DrainAll() []Packet {
	if q.n == 0 {
		return nil
	}
	out := make([]Packet, 0, q.n)
	for {
		p, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// Reset empties the queue and clears the drop/push counters, retaining
// the ring storage for reuse.
func (q *Queue) Reset() {
	q.head = 0
	q.n = 0
	q.dropped = 0
	q.pushed = 0
}
