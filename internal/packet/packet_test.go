package packet

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(3)
	for i := 0; i < 3; i++ {
		if !q.Push(Packet{ID: ID(i)}) {
			t.Fatalf("push %d rejected with free space", i)
		}
	}
	for i := 0; i < 3; i++ {
		p, ok := q.Pop()
		if !ok || p.ID != ID(i) {
			t.Fatalf("pop %d = (%v, %v)", i, p.ID, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueDropsWhenFull(t *testing.T) {
	q := NewQueue(2)
	q.Push(Packet{ID: 1})
	q.Push(Packet{ID: 2})
	if q.Push(Packet{ID: 3}) {
		t.Fatal("push into full queue accepted")
	}
	if q.Dropped() != 1 || q.Pushed() != 3 {
		t.Fatalf("dropped=%d pushed=%d", q.Dropped(), q.Pushed())
	}
	// The dropped packet must not displace queued ones.
	p, _ := q.Pop()
	if p.ID != 1 {
		t.Fatalf("head after drop = %v", p.ID)
	}
}

func TestZeroCapacityDropsAll(t *testing.T) {
	q := NewQueue(0)
	if q.Push(Packet{ID: 1}) {
		t.Fatal("zero-capacity queue accepted a packet")
	}
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d", q.Dropped())
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewQueue(-1) did not panic")
		}
	}()
	NewQueue(-1)
}

func TestDrainAll(t *testing.T) {
	q := NewQueue(5)
	for i := 0; i < 4; i++ {
		q.Push(Packet{ID: ID(i)})
	}
	got := q.DrainAll()
	if len(got) != 4 {
		t.Fatalf("drained %d packets", len(got))
	}
	for i, p := range got {
		if p.ID != ID(i) {
			t.Fatalf("drain order wrong at %d: %v", i, p.ID)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty after drain")
	}
}

func TestReset(t *testing.T) {
	q := NewQueue(1)
	q.Push(Packet{ID: 1})
	q.Push(Packet{ID: 2}) // dropped
	q.Reset()
	if q.Len() != 0 || q.Dropped() != 0 || q.Pushed() != 0 {
		t.Fatal("reset did not clear state")
	}
	if !q.Push(Packet{ID: 3}) {
		t.Fatal("push after reset rejected")
	}
}

func TestFreeAndLenTrack(t *testing.T) {
	q := NewQueue(4)
	if q.Free() != 4 || q.Len() != 0 {
		t.Fatal("fresh queue accounting wrong")
	}
	q.Push(Packet{})
	q.Push(Packet{})
	if q.Free() != 2 || q.Len() != 2 {
		t.Fatalf("free=%d len=%d", q.Free(), q.Len())
	}
	q.Pop()
	if q.Free() != 3 || q.Len() != 1 {
		t.Fatalf("after pop: free=%d len=%d", q.Free(), q.Len())
	}
}

func TestLongChurnKeepsCapacityBound(t *testing.T) {
	// Push/pop churn far beyond capacity must neither leak memory
	// unboundedly nor corrupt FIFO ordering.
	q := NewQueue(8)
	next := ID(0)
	expect := ID(0)
	for i := 0; i < 100000; i++ {
		if q.Push(Packet{ID: next}) {
			next++
		}
		if i%2 == 1 {
			p, ok := q.Pop()
			if !ok {
				t.Fatal("pop failed with items queued")
			}
			if p.ID != expect {
				t.Fatalf("FIFO violated: got %d want %d", p.ID, expect)
			}
			expect++
		}
	}
}

// Property: pushed == dropped + still-queued + popped, and Len never
// exceeds Cap, under arbitrary push/pop interleavings.
func TestQueueAccountingQuick(t *testing.T) {
	g := func(capacity uint8, ops []bool) bool {
		q := NewQueue(int(capacity % 16))
		inQueue := 0
		popped := 0
		for i, push := range ops {
			if push {
				if q.Push(Packet{ID: ID(i)}) {
					inQueue++
				}
			} else if _, ok := q.Pop(); ok {
				inQueue--
				popped++
			}
			if q.Len() > q.Cap() || q.Len() != inQueue {
				return false
			}
		}
		return q.Pushed() == q.Dropped()+inQueue+popped
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueueChurn(b *testing.B) {
	q := NewQueue(64)
	for i := 0; i < b.N; i++ {
		q.Push(Packet{ID: ID(i)})
		if i%2 == 1 {
			q.Pop()
		}
	}
}
