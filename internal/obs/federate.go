package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
)

// ExpositionContentType is the Content-Type for the text format this
// package reads and writes, exported for the federation endpoint.
const ExpositionContentType = expositionContentType

// InstanceLabel is the label federation adds to per-instance series.
const InstanceLabel = "instance"

// Label is one exposition label pair; Value is the raw (unescaped)
// string.
type Label struct {
	Name  string
	Value string
}

// Sample is one series line of an exposition. For histograms Name
// carries the full sample name including the _bucket/_sum/_count suffix
// and Labels includes le.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the value of the named label, or "".
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// MetricFamily is one # TYPE group of a parsed exposition.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram
	Samples []Sample
}

// Exposition is a fully parsed Prometheus text exposition.
type Exposition struct {
	Families []*MetricFamily
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *MetricFamily {
	for _, f := range e.Families {
		if f.Name == name {
			return f
		}
	}
	return nil
}

var (
	fedSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)
	fedLabelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// ParseExposition parses a Prometheus text exposition into its family
// and sample structure. It is the read half of federation: lenient on
// semantics (no cumulative-bucket checking — that is LintExposition's
// job) but strict on syntax.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{}
	byName := make(map[string]*MetricFamily)
	family := func(name string) *MetricFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &MetricFamily{Name: name}
		byName[name] = f
		exp.Families = append(exp.Families, f)
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) == 0 || !metricNameRe.MatchString(parts[0]) {
				return nil, fmt.Errorf("line %d: malformed HELP: %s", lineNo, line)
			}
			if len(parts) == 2 {
				family(parts[0]).Help = unescapeHelp(parts[1])
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
				return nil, fmt.Errorf("line %d: malformed TYPE: %s", lineNo, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, parts[1])
			}
			f := family(parts[0])
			if f.Type != "" && f.Type != parts[1] {
				return nil, fmt.Errorf("line %d: conflicting TYPE for %q: %s vs %s", lineNo, parts[0], f.Type, parts[1])
			}
			f.Type = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}

		m := fedSampleRe.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("line %d: unparseable sample: %s", lineNo, line)
		}
		name, labelBlock, valStr := m[1], m[2], m[3]
		val, err := parseSampleValue(valStr)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		famName := name
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name {
				if f, ok := byName[base]; ok && f.Type == "histogram" {
					famName = base
					break
				}
			}
		}
		f, ok := byName[famName]
		if !ok || f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		var labels []Label
		if labelBlock != "" {
			for _, pair := range splitLabelPairs(labelBlock[1 : len(labelBlock)-1]) {
				lm := fedLabelRe.FindStringSubmatch(pair)
				if lm == nil {
					return nil, fmt.Errorf("line %d: malformed label %q", lineNo, pair)
				}
				labels = append(labels, Label{Name: lm[1], Value: unescapeLabelValue(lm[2])})
			}
		}
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// Instance pairs a peer's name with its parsed exposition for merging.
type Instance struct {
	Name string
	Exp  *Exposition
}

// MergeExpositions federates the expositions of several instances into
// one, per the fleet merge rules (DESIGN.md §15):
//
//   - counters are summed across instances (same series → one series)
//   - histograms are summed bucket-by-bucket; since every qlecd runs the
//     same binary the bucket bounds agree, and summing per-instance
//     cumulative counts keeps the result cumulative (LintExposition on
//     the merged output is the backstop if they ever diverge)
//   - gauges are emitted per-instance with an added `instance` label; a
//     gauge that already carries one (e.g. a synthetic peer-up series
//     built by the federation handler) passes through unchanged
//
// A metric registered with different TYPEs on different instances is a
// hard error — the duplicate would poison the whole scrape surface.
func MergeExpositions(instances []Instance) (*Exposition, error) {
	out := &Exposition{}
	byName := make(map[string]*MetricFamily)
	sums := make(map[string]map[string]*mergedSample) // family -> series key -> sum

	for _, inst := range instances {
		if inst.Exp == nil {
			continue
		}
		for _, f := range inst.Exp.Families {
			mf, ok := byName[f.Name]
			if !ok {
				mf = &MetricFamily{Name: f.Name, Help: f.Help, Type: f.Type}
				byName[f.Name] = mf
				out.Families = append(out.Families, mf)
			}
			if mf.Type != f.Type {
				return nil, fmt.Errorf("metric %q: TYPE %s on instance %q conflicts with earlier TYPE %s",
					f.Name, f.Type, inst.Name, mf.Type)
			}
			switch f.Type {
			case "gauge":
				for _, s := range f.Samples {
					ls := s.Labels
					if s.Label(InstanceLabel) == "" {
						ls = append(append([]Label(nil), ls...), Label{InstanceLabel, inst.Name})
					}
					mf.Samples = append(mf.Samples, Sample{Name: s.Name, Labels: ls, Value: s.Value})
				}
			default: // counter, histogram: sum identical series
				fam := sums[f.Name]
				if fam == nil {
					fam = make(map[string]*mergedSample)
					sums[f.Name] = fam
				}
				for _, s := range f.Samples {
					k := s.Name + canonicalLabelKey(s.Labels)
					if a, ok := fam[k]; ok {
						a.sample.Value += s.Value
					} else {
						cp := s
						cp.Labels = append([]Label(nil), s.Labels...)
						fam[k] = &mergedSample{sample: cp, key: k}
					}
				}
			}
		}
	}

	for _, mf := range out.Families {
		if fam, ok := sums[mf.Name]; ok {
			accs := make([]*mergedSample, 0, len(fam))
			for _, a := range fam {
				accs = append(accs, a)
			}
			if mf.Type == "histogram" {
				sortHistogramAccs(accs)
			} else {
				sort.Slice(accs, func(i, j int) bool { return accs[i].key < accs[j].key })
			}
			for _, a := range accs {
				mf.Samples = append(mf.Samples, a.sample)
			}
		} else if mf.Type == "gauge" {
			ss := mf.Samples
			sort.SliceStable(ss, func(i, j int) bool {
				if ss[i].Name != ss[j].Name {
					return ss[i].Name < ss[j].Name
				}
				return canonicalLabelKey(ss[i].Labels) < canonicalLabelKey(ss[j].Labels)
			})
		}
	}
	sort.SliceStable(out.Families, func(i, j int) bool { return out.Families[i].Name < out.Families[j].Name })
	return out, nil
}

// mergedSample accumulates one summed series during federation.
type mergedSample struct {
	sample Sample
	key    string
}

// sortHistogramAccs orders one histogram family's summed samples into
// lintable exposition order: children grouped by base labels (le
// stripped), buckets ascending by le with +Inf last, then _sum, _count.
func sortHistogramAccs(accs []*mergedSample) {
	rank := func(name string) int {
		switch {
		case strings.HasSuffix(name, "_bucket"):
			return 0
		case strings.HasSuffix(name, "_sum"):
			return 1
		default:
			return 2
		}
	}
	baseKey := func(ls []Label) string {
		kept := make([]Label, 0, len(ls))
		for _, l := range ls {
			if l.Name != "le" {
				kept = append(kept, l)
			}
		}
		return canonicalLabelKey(kept)
	}
	leVal := func(ls []Label) float64 {
		for _, l := range ls {
			if l.Name == "le" {
				v, err := parseSampleValue(l.Value)
				if err != nil {
					return math.Inf(1)
				}
				return v
			}
		}
		return math.Inf(1)
	}
	sort.SliceStable(accs, func(i, j int) bool {
		si, sj := accs[i].sample, accs[j].sample
		bi, bj := baseKey(si.Labels), baseKey(sj.Labels)
		if bi != bj {
			return bi < bj
		}
		ri, rj := rank(si.Name), rank(sj.Name)
		if ri != rj {
			return ri < rj
		}
		if ri == 0 {
			li, lj := leVal(si.Labels), leVal(sj.Labels)
			if li != lj {
				return li < lj
			}
		}
		return accs[i].key < accs[j].key
	})
}

// WriteExposition renders a parsed (or merged) exposition back to text.
// Families are written in their stored order with HELP/TYPE headers;
// samples keep their stored order, labels their stored order.
func WriteExposition(w io.Writer, e *Exposition) error {
	bw := bufio.NewWriter(w)
	for _, f := range e.Families {
		if len(f.Samples) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.Help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Type)
		bw.WriteByte('\n')
		for _, s := range f.Samples {
			bw.WriteString(s.Name)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					bw.WriteString(l.Name)
					bw.WriteString(`="`)
					bw.WriteString(escapeLabelValue(l.Value))
					bw.WriteByte('"')
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// canonicalLabelKey renders labels sorted by name into a stable series
// key (and the exact label block WriteExposition would emit for them
// once sorted).
func canonicalLabelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append([]Label(nil), ls...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func unescapeLabelValue(v string) string {
	if !strings.ContainsRune(v, '\\') {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			i++
			switch v[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(v[i])
			}
			continue
		}
		b.WriteByte(v[i])
	}
	return b.String()
}

func unescapeHelp(h string) string {
	if !strings.ContainsRune(h, '\\') {
		return h
	}
	h = strings.ReplaceAll(h, `\n`, "\n")
	h = strings.ReplaceAll(h, `\\`, `\`)
	return h
}
