package obs

import (
	"math"
	"testing"
)

// TestCountAtMostEmptySnapshot: both a zero-value snapshot and one
// taken from a histogram that never observed anything answer 0 for any
// le — including bounds the snapshot doesn't declare.
func TestCountAtMostEmptySnapshot(t *testing.T) {
	var zero HistogramSnapshot
	for _, le := range []float64{0, 1, math.Inf(1)} {
		if got := zero.CountAtMost(le); got != 0 {
			t.Errorf("zero snapshot CountAtMost(%g) = %d, want 0", le, got)
		}
	}

	r := NewRegistry()
	h := r.Histogram("empty_seconds", "help", []float64{1, 2, 5})
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Inf != 0 {
		t.Fatalf("fresh histogram snapshot = %+v, want all-zero", s)
	}
	for _, le := range []float64{0.5, 1, 5, 10, math.Inf(1)} {
		if got := s.CountAtMost(le); got != 0 {
			t.Errorf("empty histogram CountAtMost(%g) = %d, want 0", le, got)
		}
	}
}

// TestCountAtMostInf: le=+Inf covers every declared bucket, but NOT
// the overflow bucket — those observations exceeded every declared
// bound, so they are never "known to be within" any le. The advisor
// relies on this: an SLO of +Inf still reports over-bound burn.
func TestCountAtMostInf(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inf_seconds", "help", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 2, 100, math.Inf(1)} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.CountAtMost(math.Inf(1)); got != 3 {
		t.Errorf("CountAtMost(+Inf) = %d, want 3 (declared buckets only)", got)
	}
	if s.Inf != 2 {
		t.Errorf("overflow bucket = %d, want 2", s.Inf)
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
}

// TestCountAtMostBoundary pins le-inclusiveness end to end: an
// observation exactly on a bucket's upper bound is counted by
// CountAtMost of that bound, and an le between bounds conservatively
// rounds down to the previous bound.
func TestCountAtMostBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{1, 2, 5})
	for _, v := range []float64{1, 2, 2, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		le   float64
		want uint64
	}{
		{1, 1},    // the observation exactly on the bound counts
		{2, 3},    // both boundary observations count
		{3, 3},    // between bounds: rounds down to le=2's answer
		{4.99, 3}, // still short of the 5 bucket
		{5, 4},    // the (2,5] bucket's 3 joins at its own bound
	}
	for _, c := range cases {
		if got := s.CountAtMost(c.le); got != c.want {
			t.Errorf("CountAtMost(%g) = %d, want %d", c.le, got, c.want)
		}
	}
}
