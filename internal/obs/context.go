package obs

import "context"

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyMetrics
	ctxKeyTrace
	ctxKeySpan
)

// ContextWithRequestID attaches a correlation ID to ctx.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFromContext returns the correlation ID, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// ContextWithMetrics attaches a metric registry so deeply nested code
// (the experiment executor inside a service worker) can export live
// gauges without threading a parameter through every signature.
func ContextWithMetrics(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, ctxKeyMetrics, r)
}

// MetricsFromContext returns the registry, or nil — callers must treat
// nil as "instrumentation off" and skip all metric work.
func MetricsFromContext(ctx context.Context) *Registry {
	r, _ := ctx.Value(ctxKeyMetrics).(*Registry)
	return r
}

// ContextWithTrace attaches a span recorder for the current job.
func ContextWithTrace(ctx context.Context, t *TraceRecorder) context.Context {
	return context.WithValue(ctx, ctxKeyTrace, t)
}

// TraceFromContext returns the recorder, or nil (tracing off).
func TraceFromContext(ctx context.Context) *TraceRecorder {
	t, _ := ctx.Value(ctxKeyTrace).(*TraceRecorder)
	return t
}
