package obs

import (
	"fmt"
	"runtime/debug"
)

// BuildInfo is the version report served at GET /version and printed by
// the -version flags.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"buildTime,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// Version collects module/VCS build metadata via
// runtime/debug.ReadBuildInfo. Fields missing from the build (e.g. a
// non-VCS test binary) are left empty.
func Version() BuildInfo {
	bi := BuildInfo{Version: "(devel)"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	bi.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.time":
			bi.BuildTime = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// String renders a one-line human version report.
func (b BuildInfo) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	s := fmt.Sprintf("%s %s (%s)", b.Module, b.Version, b.GoVersion)
	if rev != "" {
		s += " rev " + rev
	}
	return s
}
