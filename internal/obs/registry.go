// Package obs is the repo's unified observability layer: a stdlib-only
// Prometheus-text-format metric registry (counters, gauges, histograms,
// label vectors, callback collectors), structured-logging helpers over
// log/slog with X-Request-ID propagation, an HTTP middleware that ties
// the two together, a lightweight span tracer exporting Chrome
// trace_event JSON (loadable in chrome://tracing / Perfetto), and an
// adapter that turns the simulation engine's per-round Observer stream
// into live protocol gauges.
//
// Everything is concurrency-safe and deliberately dependency-free: the
// registry writes the Prometheus exposition format directly (golden-
// tested in registry_test.go and linted by Lint, a promtool-style check
// with no external binaries). Metric naming and label-cardinality rules
// are documented in DESIGN.md §10.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. All methods are safe for concurrent use.
// Registration is idempotent by (name, type, label names): asking for an
// existing collector returns it, while re-registering a name under a
// different type or label set panics — that is a programming error the
// exposition format cannot represent.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one metric name: its metadata plus every labelled child.
type family struct {
	name       string
	help       string
	mtype      string // "counter", "gauge", "histogram"
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child // key = rendered label block ("" for none)
	order    []string          // insertion-ordered keys, sorted at write
}

// child is one time series: a value cell, a callback, or histogram
// state, with its rendered label block.
type child struct {
	labels string // `{k="v",...}` or ""

	bits atomic.Uint64  // float64 bits (counter/gauge)
	fn   func() float64 // callback collectors (nil otherwise)
	hist *histogramData // histograms (nil otherwise)
}

type histogramData struct {
	upper   []float64 // sorted upper bounds, +Inf excluded
	counts  []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// addFloat atomically adds delta to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (r *Registry) lookup(name, help, mtype string, labelNames []string, buckets []float64) *family {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !labelNameRe.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.mtype != mtype || !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, mtype, labelNames, f.mtype, f.labelNames))
		}
		return f
	}
	f := &family{
		name: name, help: help, mtype: mtype,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		children:   make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childFor returns (creating if needed) the series for the given label
// values; values must match the family's declared label names.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := renderLabels(f.labelNames, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labels: key}
	if f.mtype == "histogram" {
		c.hist = &histogramData{
			upper:  f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)),
		}
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// renderLabels renders a label block like `{a="x",b="y"}` with
// exposition-format escaping; empty input renders "".
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Inc adds 1.
func (c *Counter) Inc() { addFloat(&c.c.bits, 1) }

// Add adds v; negative deltas panic (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decrease")
	}
	addFloat(&c.c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds v (negative ok).
func (g *Gauge) Add(v float64) { addFloat(&g.c.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Histogram samples observations into cumulative buckets with declared
// upper bounds (le is inclusive, per the exposition format).
type Histogram struct{ c *child }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	d := h.c.hist
	// First bucket whose upper bound is >= v; a value exactly on a
	// boundary lands in that boundary's bucket (le is inclusive).
	i := sort.SearchFloat64s(d.upper, v)
	if i < len(d.upper) {
		d.counts[i].Add(1)
	} else {
		d.inf.Add(1)
	}
	d.count.Add(1)
	addFloat(&d.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.c.hist.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram's state,
// used by the fleet advisor to compute over-SLO burn rates without
// round-tripping through the text exposition.
type HistogramSnapshot struct {
	Upper  []float64 // declared upper bounds, +Inf excluded
	Counts []uint64  // per-bucket (non-cumulative) counts, same length as Upper
	Inf    uint64    // observations above the last bound
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current buckets. The per-bucket loads
// are individually atomic; a snapshot taken concurrently with Observe
// may be off by the in-flight sample, which is fine for rate math.
func (h *Histogram) Snapshot() HistogramSnapshot {
	d := h.c.hist
	s := HistogramSnapshot{
		Upper:  d.upper,
		Counts: make([]uint64, len(d.counts)),
		Inf:    d.inf.Load(),
		Count:  d.count.Load(),
		Sum:    math.Float64frombits(d.sumBits.Load()),
	}
	for i := range d.counts {
		s.Counts[i] = d.counts[i].Load()
	}
	return s
}

// CountAtMost returns how many observations fell into buckets whose
// upper bound is <= le — i.e. observations known to be within an SLO
// that coincides with a bucket boundary. SLOs between boundaries are
// conservatively rounded down to the previous bound.
func (s HistogramSnapshot) CountAtMost(le float64) uint64 {
	var n uint64
	for i, ub := range s.Upper {
		if ub > le {
			break
		}
		n += s.Counts[i]
	}
	return n
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.lookup(name, help, "counter", nil, nil).childFor(nil)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.lookup(name, help, "gauge", nil, nil).childFor(nil)}
}

// Histogram registers (or fetches) an unlabelled histogram with the
// given upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{r.histFamily(name, help, nil, buckets).childFor(nil)}
}

func (r *Registry) histFamily(name, help string, labels []string, buckets []float64) *family {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not sorted", name))
	}
	return r.lookup(name, help, "histogram", labels, append([]float64(nil), buckets...))
}

// CounterVec is a counter family with declared label names.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, "counter", labelNames, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{v.f.childFor(values)}
}

// GaugeVec is a gauge family with declared label names.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, "gauge", labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{v.f.childFor(values)}
}

// HistogramVec is a histogram family with declared label names; every
// child shares the declared buckets.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.histFamily(name, help, labelNames, buckets)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{v.f.childFor(values)}
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — for state that already lives elsewhere (queue depth, job-table
// counts). labelPairs is an alternating key,value list identifying this
// series within the family, so one name can carry several callbacks
// (e.g. a jobs gauge per lifecycle state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.funcSeries(name, help, "gauge", fn, labelPairs)
}

// CounterFunc registers a counter read from fn at scrape time; fn must
// be monotonically non-decreasing (e.g. an existing atomic counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.funcSeries(name, help, "counter", fn, labelPairs)
}

func (r *Registry) funcSeries(name, help, mtype string, fn func() float64, labelPairs []string) {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("obs: %s: label pairs must alternate key,value", name))
	}
	names := make([]string, 0, len(labelPairs)/2)
	values := make([]string, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, labelPairs[i])
		values = append(values, labelPairs[i+1])
	}
	f := r.lookup(name, help, mtype, names, nil)
	c := f.childFor(values)
	f.mu.Lock()
	c.fn = fn
	f.mu.Unlock()
}
