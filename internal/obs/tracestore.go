package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanRecord is one span (or instant) of a distributed trace in a
// peer-neutral form: absolute unix-microsecond timestamps plus the
// instance that recorded it. Peers exchange []SpanRecord over
// GET /v1/fleet/trace/{traceID}; WriteChromeTrace stitches records from
// many peers into one timeline with a lane per instance.
type SpanRecord struct {
	TraceID  string         `json:"traceId"`
	SpanID   string         `json:"spanId,omitempty"`
	Parent   string         `json:"parent,omitempty"`
	Name     string         `json:"name"`
	Cat      string         `json:"cat,omitempty"`
	Instance string         `json:"instance"`
	Phase    string         `json:"phase"`   // "X" complete span, "i" instant
	StartUS  int64          `json:"startUs"` // unix microseconds
	DurUS    int64          `json:"durUs,omitempty"`
	Args     map[string]any `json:"args,omitempty"`
}

// Default TraceStore bounds: traces are evicted FIFO past MaxStoreTraces
// and each trace keeps at most MaxStoreSpans records.
const (
	DefaultStoreTraces = 256
	DefaultStoreSpans  = 4096
)

// TraceStore holds the spans this instance recorded, grouped by trace
// ID, bounded in both directions (trace count FIFO, spans per trace).
// It is the per-daemon half of cross-peer tracing: every peer keeps its
// own store, and whoever serves the merged view fans out to collect.
type TraceStore struct {
	instance  string
	mu        sync.Mutex
	byTrace   map[string][]SpanRecord
	order     []string
	maxTraces int
	maxSpans  int
	dropped   uint64
}

// NewTraceStore returns a store labelling every span with instance.
// maxTraces/maxSpans <= 0 use the defaults.
func NewTraceStore(instance string, maxTraces, maxSpans int) *TraceStore {
	if maxTraces <= 0 {
		maxTraces = DefaultStoreTraces
	}
	if maxSpans <= 0 {
		maxSpans = DefaultStoreSpans
	}
	return &TraceStore{
		instance:  instance,
		byTrace:   make(map[string][]SpanRecord),
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
	}
}

// Span records a complete span under sc's trace. No-op on an invalid
// context or nil store, so callers never need to guard.
func (s *TraceStore) Span(sc SpanContext, name, cat string, start, end time.Time, args map[string]any) {
	if s == nil || sc.TraceID == "" {
		return
	}
	dur := end.Sub(start).Microseconds()
	if dur < 1 {
		dur = 1
	}
	s.add(SpanRecord{
		TraceID: sc.TraceID, SpanID: sc.SpanID, Parent: sc.Parent,
		Name: name, Cat: cat, Instance: s.instance, Phase: "X",
		StartUS: start.UnixMicro(), DurUS: dur, Args: args,
	})
}

// Instant records a point event under sc's trace at time now.
func (s *TraceStore) Instant(sc SpanContext, name, cat string, args map[string]any) {
	if s == nil || sc.TraceID == "" {
		return
	}
	s.add(SpanRecord{
		TraceID: sc.TraceID, SpanID: sc.SpanID, Parent: sc.Parent,
		Name: name, Cat: cat, Instance: s.instance, Phase: "i",
		StartUS: time.Now().UnixMicro(), Args: args,
	})
}

func (s *TraceStore) add(r SpanRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	spans, ok := s.byTrace[r.TraceID]
	if !ok {
		for len(s.order) >= s.maxTraces {
			delete(s.byTrace, s.order[0])
			s.order = s.order[1:]
		}
		s.order = append(s.order, r.TraceID)
	}
	if len(spans) >= s.maxSpans {
		s.dropped++
		return
	}
	s.byTrace[r.TraceID] = append(spans, r)
}

// Spans returns a copy of the records held for one trace.
func (s *TraceStore) Spans(traceID string) []SpanRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanRecord(nil), s.byTrace[traceID]...)
}

// Traces returns the number of distinct traces currently held.
func (s *TraceStore) Traces() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byTrace)
}

// WriteChromeTrace merges span records — typically gathered from
// several peers — into one Chrome trace_event JSON document. Each
// instance becomes its own process lane (pid) named via process_name
// metadata; timestamps are rebased to the earliest span so the timeline
// starts at zero.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	instances := make([]string, 0, 4)
	seen := make(map[string]bool)
	base := int64(0)
	for i, r := range spans {
		if !seen[r.Instance] {
			seen[r.Instance] = true
			instances = append(instances, r.Instance)
		}
		if i == 0 || r.StartUS < base {
			base = r.StartUS
		}
	}
	sort.Strings(instances)
	pid := make(map[string]int, len(instances))
	events := make([]traceEvent, 0, len(spans)+len(instances))
	for i, inst := range instances {
		pid[inst] = i + 1
		events = append(events, traceEvent{
			Name: "process_name", Cat: "__metadata", Phase: "M",
			PID: i + 1, TID: 1,
			Args: map[string]any{"name": inst},
		})
	}
	ordered := append([]SpanRecord(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].StartUS < ordered[j].StartUS })
	for _, r := range ordered {
		ev := traceEvent{
			Name: r.Name, Cat: r.Cat, Phase: r.Phase,
			TS: r.StartUS - base, Dur: r.DurUS,
			PID: pid[r.Instance], TID: 1,
		}
		if ev.Phase == "" {
			ev.Phase = "X"
		}
		if ev.Phase == "i" {
			ev.Scope = "t"
		}
		if r.SpanID != "" || r.Parent != "" || r.TraceID != "" {
			ev.Args = map[string]any{}
			for k, v := range r.Args {
				ev.Args[k] = v
			}
			if r.TraceID != "" {
				ev.Args["trace"] = r.TraceID
			}
			if r.SpanID != "" {
				ev.Args["span"] = r.SpanID
			}
			if r.Parent != "" {
				ev.Args["parentSpan"] = r.Parent
			}
		} else {
			ev.Args = r.Args
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"})
}
