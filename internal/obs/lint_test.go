package obs

import (
	"strings"
	"testing"
)

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"no TYPE", "foo 1\n"},
		{"bad TYPE", "# TYPE foo summary\nfoo 1\n"},
		{"duplicate TYPE", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo abc\n"},
		{"bad metric name", "# TYPE foo counter\n2foo 1\n"},
		{"duplicate series", "# TYPE foo counter\nfoo 1\nfoo 2\n"},
		{"malformed label", `# TYPE foo counter` + "\n" + `foo{bad} 1` + "\n"},
		{"bucket without le", "# TYPE foo histogram\nfoo_bucket 1\nfoo_sum 1\nfoo_count 1\n"},
		{"non-cumulative buckets", "# TYPE foo histogram\n" +
			`foo_bucket{le="1"} 5` + "\n" + `foo_bucket{le="+Inf"} 3` + "\n" +
			"foo_sum 1\nfoo_count 3\n"},
		{"inf != count", "# TYPE foo histogram\n" +
			`foo_bucket{le="1"} 1` + "\n" + `foo_bucket{le="+Inf"} 2` + "\n" +
			"foo_sum 1\nfoo_count 3\n"},
		{"missing +Inf", "# TYPE foo histogram\n" +
			`foo_bucket{le="1"} 1` + "\n" + "foo_sum 1\nfoo_count 1\n"},
	}
	for _, tc := range cases {
		if err := LintExposition(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: lint accepted invalid input:\n%s", tc.name, tc.input)
		}
	}
}

func TestLintAcceptsValid(t *testing.T) {
	input := "# HELP up Liveness.\n# TYPE up gauge\nup 1\n" +
		"# TYPE lat histogram\n" +
		`lat_bucket{op="a",le="1"} 2` + "\n" +
		`lat_bucket{op="a",le="+Inf"} 3` + "\n" +
		`lat_sum{op="a"} 4.5` + "\n" +
		`lat_count{op="a"} 3` + "\n" +
		"# TYPE special gauge\nspecial NaN\n"
	if err := LintExposition(strings.NewReader(input)); err != nil {
		t.Fatalf("lint rejected valid input: %v", err)
	}
}
