package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestLintRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"no TYPE", "foo 1\n"},
		{"bad TYPE", "# TYPE foo summary\nfoo 1\n"},
		{"duplicate TYPE", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n"},
		{"bad value", "# TYPE foo counter\nfoo abc\n"},
		{"bad metric name", "# TYPE foo counter\n2foo 1\n"},
		{"duplicate series", "# TYPE foo counter\nfoo 1\nfoo 2\n"},
		{"malformed label", `# TYPE foo counter` + "\n" + `foo{bad} 1` + "\n"},
		{"bucket without le", "# TYPE foo histogram\nfoo_bucket 1\nfoo_sum 1\nfoo_count 1\n"},
		{"non-cumulative buckets", "# TYPE foo histogram\n" +
			`foo_bucket{le="1"} 5` + "\n" + `foo_bucket{le="+Inf"} 3` + "\n" +
			"foo_sum 1\nfoo_count 3\n"},
		{"inf != count", "# TYPE foo histogram\n" +
			`foo_bucket{le="1"} 1` + "\n" + `foo_bucket{le="+Inf"} 2` + "\n" +
			"foo_sum 1\nfoo_count 3\n"},
		{"missing +Inf", "# TYPE foo histogram\n" +
			`foo_bucket{le="1"} 1` + "\n" + "foo_sum 1\nfoo_count 1\n"},
	}
	for _, tc := range cases {
		if err := LintExposition(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: lint accepted invalid input:\n%s", tc.name, tc.input)
		}
	}
}

func TestLintAcceptsValid(t *testing.T) {
	input := "# HELP up Liveness.\n# TYPE up gauge\nup 1\n" +
		"# TYPE lat histogram\n" +
		`lat_bucket{op="a",le="1"} 2` + "\n" +
		`lat_bucket{op="a",le="+Inf"} 3` + "\n" +
		`lat_sum{op="a"} 4.5` + "\n" +
		`lat_count{op="a"} 3` + "\n" +
		"# TYPE special gauge\nspecial NaN\n"
	if err := LintExposition(strings.NewReader(input)); err != nil {
		t.Fatalf("lint rejected valid input: %v", err)
	}
}

// TestLintExpositionsCrossRegistry: two registries exposed by one
// process form one scrape surface, so a family or series name owned by
// both is an error even though each exposition lints clean alone.
func TestLintExpositionsCrossRegistry(t *testing.T) {
	a := NewRegistry()
	a.Counter("shared_total", "Owned by registry A.").Inc()
	b := NewRegistry()
	b.Counter("shared_total", "Owned by registry B too.").Inc()

	var ea, eb bytes.Buffer
	if err := a.WritePrometheus(&ea); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&eb); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(bytes.NewReader(ea.Bytes())); err != nil {
		t.Fatalf("registry A alone fails lint: %v", err)
	}
	err := LintExpositions(bytes.NewReader(ea.Bytes()), bytes.NewReader(eb.Bytes()))
	if err == nil {
		t.Fatal("duplicate family across registries lints clean")
	}
	if !strings.Contains(err.Error(), "input 2") || !strings.Contains(err.Error(), "shared_total") {
		t.Fatalf("error %q does not locate the duplicate in input 2", err)
	}

	// Disjoint names across registries lint clean together.
	c := NewRegistry()
	c.Gauge("other_gauge", "Unrelated.").Set(1)
	var ec bytes.Buffer
	if err := c.WritePrometheus(&ec); err != nil {
		t.Fatal(err)
	}
	if err := LintExpositions(bytes.NewReader(ea.Bytes()), bytes.NewReader(ec.Bytes())); err != nil {
		t.Fatalf("disjoint registries fail joint lint: %v", err)
	}
}
