package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceRecorder accumulates spans and instants and exports them as
// Chrome trace_event JSON, loadable in chrome://tracing and Perfetto.
// One recorder covers one job; the event list is bounded so a
// million-round simulation cannot exhaust memory — once the cap is hit
// further events are counted but dropped (the drop count is emitted as
// a final metadata instant on export).
type TraceRecorder struct {
	mu      sync.Mutex
	start   time.Time
	events  []traceEvent
	max     int
	dropped int
}

// traceEvent is one entry in the Chrome trace_event format. ph "X" is a
// complete span (ts+dur), "i" an instant.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`            // microseconds since trace start
	Dur   int64          `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

// DefaultTraceCap bounds events kept per recorder (~a few MB of JSON).
const DefaultTraceCap = 20000

// NewTraceRecorder returns a recorder whose timestamps are relative to
// now. maxEvents <= 0 uses DefaultTraceCap.
func NewTraceRecorder(maxEvents int) *TraceRecorder {
	if maxEvents <= 0 {
		maxEvents = DefaultTraceCap
	}
	return &TraceRecorder{start: time.Now(), max: maxEvents}
}

// Span records a complete span from start to end (wall-clock times).
func (t *TraceRecorder) Span(name, cat string, start, end time.Time, args map[string]any) {
	if t == nil {
		return
	}
	dur := end.Sub(start).Microseconds()
	if dur < 1 {
		dur = 1 // zero-duration spans render invisibly in trace viewers
	}
	t.add(traceEvent{
		Name: name, Cat: cat, Phase: "X",
		TS: start.Sub(t.start).Microseconds(), Dur: dur,
		PID: 1, TID: 1, Args: args,
	})
}

// Instant records a point event at time now.
func (t *TraceRecorder) Instant(name, cat string, args map[string]any) {
	if t == nil {
		return
	}
	t.add(traceEvent{
		Name: name, Cat: cat, Phase: "i",
		TS:  time.Since(t.start).Microseconds(),
		PID: 1, TID: 1, Scope: "t", Args: args,
	})
}

func (t *TraceRecorder) add(ev traceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Len returns the number of recorded (non-dropped) events.
func (t *TraceRecorder) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Export converts the recorder's events into SpanRecords with absolute
// wall-clock timestamps, attributed to the given trace ID and instance,
// so they can be merged with spans recorded on other peers.
func (t *TraceRecorder) Export(traceID, instance string) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	base := t.start
	t.mu.Unlock()
	out := make([]SpanRecord, 0, len(events))
	for _, ev := range events {
		out = append(out, SpanRecord{
			TraceID:  traceID,
			Name:     ev.Name,
			Cat:      ev.Cat,
			Instance: instance,
			Phase:    ev.Phase,
			StartUS:  base.UnixMicro() + ev.TS,
			DurUS:    ev.Dur,
			Args:     ev.Args,
		})
	}
	return out
}

// WriteJSON emits the Chrome trace_event envelope.
func (t *TraceRecorder) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()
	if dropped > 0 {
		events = append(events, traceEvent{
			Name: "events dropped (trace cap reached)", Cat: "meta", Phase: "i",
			TS: events[len(events)-1].TS, PID: 1, TID: 1, Scope: "g",
			Args: map[string]any{"dropped": dropped},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"})
}
