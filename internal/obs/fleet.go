package obs

// FleetMetrics instruments the qlecd fleet runtime: work stealing,
// cross-node cache proxying and lease lifecycle. Pool depth, roster
// gauges and the lease-expiry counter are exported by the service layer
// as callback collectors over its own state (the same pattern as
// serverMetrics), so this struct holds only the event counters the
// runtime increments inline.
type FleetMetrics struct {
	// CellsExecuted counts cells this daemon ran, by source: "local"
	// (acquired from its own pool) or "stolen" (leased from a peer).
	CellsExecuted *CounterVec
	// CellsStolenOut counts cells this daemon granted to thieves.
	CellsStolenOut *Counter
	// CellsStolenIn counts cells this daemon stole from peers.
	CellsStolenIn *Counter
	// ProxyHitsServed counts cache lookups this daemon answered for
	// peers as the hash's ring owner.
	ProxyHitsServed *Counter
	// ProxyHitsFetched counts results this daemon obtained from their
	// ring owner instead of recomputing.
	ProxyHitsFetched *Counter
	// CacheReplications counts result envelopes pushed to their ring
	// owner after execution.
	CacheReplications *Counter
	// CellsCompleted counts cells whose results this daemon accepted as
	// coordinator (first completion per cell; late duplicates from lease
	// races are not counted). Summing it across a federated scrape gives
	// the fleet's total completed cells exactly once.
	CellsCompleted *Counter
	// StealStarvation counts executor polls that found no work anywhere:
	// the local pool was empty and the steal round came back empty-handed.
	// Its rate is the advisor's scale-down signal.
	StealStarvation *Counter
	// CellWait observes how long each cell sat pooled before an executor
	// acquired it — the fleet-level analogue of the job queue-wait
	// histogram, and the advisor's scale-up signal for batch work.
	CellWait *Histogram
}

// CellWaitBuckets match the job queue-wait buckets so one SLO bound
// addresses both histograms.
var CellWaitBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60, 600}

// NewFleetMetrics registers the fleet counters on r.
func NewFleetMetrics(r *Registry) *FleetMetrics {
	return &FleetMetrics{
		CellsExecuted: r.CounterVec("qlecd_fleet_cells_executed_total",
			"Sweep cells executed by this daemon, by work source.", "source"),
		CellsStolenOut: r.Counter("qlecd_fleet_cells_stolen_out_total",
			"Cells granted from this daemon's pool to stealing peers."),
		CellsStolenIn: r.Counter("qlecd_fleet_cells_stolen_in_total",
			"Cells this daemon stole from peers' pools."),
		ProxyHitsServed: r.Counter("qlecd_fleet_proxy_hits_served_total",
			"Cache lookups answered for peers as the hash's ring owner."),
		ProxyHitsFetched: r.Counter("qlecd_fleet_proxy_hits_fetched_total",
			"Results fetched from their ring owner instead of recomputing."),
		CacheReplications: r.Counter("qlecd_fleet_cache_replications_total",
			"Result envelopes replicated to their ring owner after execution."),
		CellsCompleted: r.Counter("qlecd_fleet_cells_completed_total",
			"Cells completed under this daemon's coordination (first completion per cell)."),
		StealStarvation: r.Counter("qlecd_fleet_steal_starvation_total",
			"Executor polls that found no local work and no stealable peer work."),
		CellWait: r.Histogram("qlecd_fleet_cell_wait_seconds",
			"Seconds each cell waited in the pool before an executor acquired it.",
			CellWaitBuckets),
	}
}
