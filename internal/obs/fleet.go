package obs

// FleetMetrics instruments the qlecd fleet runtime: work stealing,
// cross-node cache proxying and lease lifecycle. Pool depth, roster
// gauges and the lease-expiry counter are exported by the service layer
// as callback collectors over its own state (the same pattern as
// serverMetrics), so this struct holds only the event counters the
// runtime increments inline.
type FleetMetrics struct {
	// CellsExecuted counts cells this daemon ran, by source: "local"
	// (acquired from its own pool) or "stolen" (leased from a peer).
	CellsExecuted *CounterVec
	// CellsStolenOut counts cells this daemon granted to thieves.
	CellsStolenOut *Counter
	// CellsStolenIn counts cells this daemon stole from peers.
	CellsStolenIn *Counter
	// ProxyHitsServed counts cache lookups this daemon answered for
	// peers as the hash's ring owner.
	ProxyHitsServed *Counter
	// ProxyHitsFetched counts results this daemon obtained from their
	// ring owner instead of recomputing.
	ProxyHitsFetched *Counter
	// CacheReplications counts result envelopes pushed to their ring
	// owner after execution.
	CacheReplications *Counter
}

// NewFleetMetrics registers the fleet counters on r.
func NewFleetMetrics(r *Registry) *FleetMetrics {
	return &FleetMetrics{
		CellsExecuted: r.CounterVec("qlecd_fleet_cells_executed_total",
			"Sweep cells executed by this daemon, by work source.", "source"),
		CellsStolenOut: r.Counter("qlecd_fleet_cells_stolen_out_total",
			"Cells granted from this daemon's pool to stealing peers."),
		CellsStolenIn: r.Counter("qlecd_fleet_cells_stolen_in_total",
			"Cells this daemon stole from peers' pools."),
		ProxyHitsServed: r.Counter("qlecd_fleet_proxy_hits_served_total",
			"Cache lookups answered for peers as the hash's ring owner."),
		ProxyHitsFetched: r.Counter("qlecd_fleet_proxy_hits_fetched_total",
			"Results fetched from their ring owner instead of recomputing."),
		CacheReplications: r.Counter("qlecd_fleet_cache_replications_total",
			"Result envelopes replicated to their ring owner after execution."),
	}
}
