package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// expositionContentType is the Prometheus text format version this
// package writes.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus
// text exposition format: families sorted by name, series sorted by
// label block, `# HELP` and `# TYPE` preceding each family's samples.
// Output is deterministic for a given registry state (golden-testable).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ServeHTTP makes a Registry mountable at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", expositionContentType)
	_ = r.WritePrometheus(w)
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]*child, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return nil
	}

	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteByte('\n')
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.mtype)
	w.WriteByte('\n')

	for _, c := range children {
		if f.mtype == "histogram" {
			writeHistogram(w, f.name, c)
			continue
		}
		v := math.Float64frombits(c.bits.Load())
		if c.fn != nil {
			v = c.fn()
		}
		w.WriteString(f.name)
		w.WriteString(c.labels)
		w.WriteByte(' ')
		w.WriteString(formatFloat(v))
		w.WriteByte('\n')
	}
	return nil
}

func writeHistogram(w *bufio.Writer, name string, c *child) {
	d := c.hist
	// Snapshot counts first so cumulative sums stay monotone even under
	// concurrent Observe calls; count is read last so it can only be >=
	// the bucket total it accompanies... strictly we accept the small
	// skew a concurrent scrape sees — the linter checks +Inf == count on
	// quiescent output (tests), not mid-flight.
	var cum uint64
	sum := math.Float64frombits(d.sumBits.Load())
	counts := make([]uint64, len(d.upper))
	for i := range d.upper {
		counts[i] = d.counts[i].Load()
	}
	inf := d.inf.Load()
	for i, ub := range d.upper {
		cum += counts[i]
		w.WriteString(name)
		w.WriteString(bucketLabels(c.labels, formatFloat(ub)))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(cum, 10))
		w.WriteByte('\n')
	}
	cum += inf
	w.WriteString(name)
	w.WriteString(bucketLabels(c.labels, "+Inf"))
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')
	w.WriteString(name)
	w.WriteString("_sum")
	w.WriteString(c.labels)
	w.WriteByte(' ')
	w.WriteString(formatFloat(sum))
	w.WriteByte('\n')
	w.WriteString(name)
	w.WriteString("_count")
	w.WriteString(c.labels)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')
}

// bucketLabels splices le into an existing label block (or creates one)
// and appends the _bucket suffix position: name_bucket{...,le="x"}.
func bucketLabels(labels, le string) string {
	var b strings.Builder
	b.WriteString("_bucket")
	if labels == "" {
		b.WriteString(`{le="`)
		b.WriteString(le)
		b.WriteString(`"}`)
		return b.String()
	}
	b.WriteString(labels[:len(labels)-1]) // drop trailing '}'
	b.WriteString(`,le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	h = strings.ReplaceAll(h, "\n", `\n`)
	return h
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, explicit +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
