package obs

import (
	"strings"
	"testing"

	"qlec/internal/metrics"
	"qlec/internal/sim"
)

func TestSimCollectorObserve(t *testing.T) {
	r := NewRegistry()
	c := NewSimCollector(r, "QLEC", 500, 5)

	snap := sim.RoundSnapshot{
		Round:       3,
		Alive:       97,
		EnergySoFar: 120,
		Stats: metrics.RoundStats{
			Heads:     4,
			Generated: 50,
			Delivered: 45,
		},
		MeanQ:   0.42,
		Epsilon: 0.05,
		HasQ:    true,
	}
	snap.Stats.Dropped[metrics.DropLink] = 3
	snap.Stats.Dropped[metrics.DropQueue] = 2
	c.Observe(snap)
	snap.Round, snap.EnergySoFar = 4, 150
	c.Observe(snap)

	if got := c.round.Value(); got != 4 {
		t.Errorf("round = %v, want 4", got)
	}
	if got := c.residual.Value(); got != 350 {
		t.Errorf("residual = %v, want 350 (500 initial - 150 consumed)", got)
	}
	if got := c.alive.Value(); got != 97 {
		t.Errorf("alive = %v, want 97", got)
	}
	if got := c.kTarget.Value(); got != 5 {
		t.Errorf("kTarget = %v, want 5", got)
	}
	if got := c.generated.Value(); got != 100 {
		t.Errorf("generated = %v, want 100 (counter accumulates per-round)", got)
	}
	if got := c.delivered.Value(); got != 90 {
		t.Errorf("delivered = %v, want 90", got)
	}
	if got := c.dropped[metrics.DropLink].Value(); got != 6 {
		t.Errorf("dropped{link} = %v, want 6", got)
	}
	if got := c.meanQ.Value(); got != 0.42 {
		t.Errorf("meanQ = %v, want 0.42", got)
	}
	if got := c.epsilon.Value(); got != 0.05 {
		t.Errorf("epsilon = %v, want 0.05", got)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`qlec_sim_round{protocol="QLEC"} 4`,
		`qlec_sim_alive_nodes{protocol="QLEC"} 97`,
		`qlec_sim_packets_dropped_total{protocol="QLEC",reason="link"} 6`,
		`qlec_sim_mean_q_value{protocol="QLEC"} 0.42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("sim exposition fails lint: %v", err)
	}
}

// TestSimCollectorSkipsQWhenAbsent: DEEC ablations report HasQ=false
// and must not disturb the Q gauges.
func TestSimCollectorSkipsQWhenAbsent(t *testing.T) {
	r := NewRegistry()
	c := NewSimCollector(r, "DEEC-nearest", 500, 5)
	c.meanQ.Set(99) // sentinel: must survive a HasQ=false observation
	c.Observe(sim.RoundSnapshot{Round: 1, HasQ: false})
	if got := c.meanQ.Value(); got != 99 {
		t.Errorf("meanQ = %v; HasQ=false observation overwrote it", got)
	}
}
