package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRequestID(t *testing.T) {
	var seen string
	h := Middleware(nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFromContext(r.Context())
	}))

	// Provided ID flows through and is echoed.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "abc123")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if seen != "abc123" {
		t.Errorf("context request ID = %q, want abc123", seen)
	}
	if got := rr.Header().Get(RequestIDHeader); got != "abc123" {
		t.Errorf("echoed header = %q, want abc123", got)
	}

	// Absent ID is generated.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	if seen == "" || seen == "abc123" {
		t.Errorf("generated ID = %q, want fresh non-empty", seen)
	}
	if rr.Header().Get(RequestIDHeader) != seen {
		t.Error("generated ID not echoed in response header")
	}
}

func TestMiddlewareMetricsAndLog(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	h := Middleware(logger, m, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/missing" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))

	for _, path := range []string{"/a", "/a", "/missing"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	}

	if got := m.requests.With("GET", "200").Value(); got != 2 {
		t.Errorf(`requests{GET,200} = %v, want 2`, got)
	}
	if got := m.requests.With("GET", "404").Value(); got != 1 {
		t.Errorf(`requests{GET,404} = %v, want 1`, got)
	}
	if got := m.duration.With("GET").Count(); got != 3 {
		t.Errorf("duration count = %d, want 3", got)
	}
	if got := m.inflight.Value(); got != 0 {
		t.Errorf("inflight = %v, want 0 after completion", got)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "status=404") || !strings.Contains(logs, "requestId=") {
		t.Errorf("request log missing status/requestId fields:\n%s", logs)
	}
}

// TestMiddlewarePreservesFlusher guards the SSE path: the wrapped
// writer must still satisfy http.Flusher.
func TestMiddlewarePreservesFlusher(t *testing.T) {
	h := Middleware(nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			t.Error("middleware writer lost http.Flusher")
		}
		w.(http.Flusher).Flush()
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
	if _, err := NewLogger(&bytes.Buffer{}, slog.LevelInfo, "yaml"); err == nil {
		t.Error("NewLogger accepted an unknown format")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 {
		t.Errorf("request IDs %q, %q: want 16-hex, distinct", a, b)
	}
}
