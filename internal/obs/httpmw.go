package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// HTTPMetrics holds the server-side request instruments registered by
// NewHTTPMetrics. Labels are bounded: method and status code only — no
// paths, which would explode cardinality with per-job URLs (see
// DESIGN.md §10).
type HTTPMetrics struct {
	requests *CounterVec   // qlecd_http_requests_total{method,code}
	duration *HistogramVec // qlecd_http_request_duration_seconds{method}
	inflight *Gauge        // qlecd_http_requests_in_flight
}

// DefaultDurationBuckets suit request latencies from sub-millisecond
// cache hits to multi-minute long polls.
var DefaultDurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// NewHTTPMetrics registers the HTTP request instruments on r.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: r.CounterVec("qlecd_http_requests_total",
			"HTTP requests served, by method and status code.", "method", "code"),
		duration: r.HistogramVec("qlecd_http_request_duration_seconds",
			"HTTP request latency in seconds.", DefaultDurationBuckets, "method"),
		inflight: r.Gauge("qlecd_http_requests_in_flight",
			"HTTP requests currently being served."),
	}
}

// Middleware wraps next with request-ID propagation, structured request
// logging, and HTTP metrics. Either logger or metrics may be nil to
// disable that half. The request ID is taken from X-Request-ID (or
// generated), stored on the request context, and echoed in the
// response header.
func Middleware(logger *slog.Logger, m *HTTPMetrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rid := req.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		ctx := ContextWithRequestID(req.Context(), rid)
		if sc, ok := ParseTraceParent(req.Header.Get(TraceParentHeader)); ok {
			ctx = ContextWithSpan(ctx, sc)
		}
		req = req.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		if m != nil {
			m.inflight.Inc()
		}
		next.ServeHTTP(sw, req)
		elapsed := time.Since(start)
		if m != nil {
			m.inflight.Dec()
			m.requests.With(req.Method, statusText(sw.code)).Inc()
			m.duration.With(req.Method).Observe(elapsed.Seconds())
		}
		if logger != nil {
			logger.Info("http request",
				"method", req.Method,
				"path", req.URL.Path,
				"status", sw.code,
				"durationMs", float64(elapsed.Microseconds())/1000,
				"requestId", rid,
				"remote", req.RemoteAddr,
			)
		}
	})
}

func statusText(code int) string {
	// Small fixed set keeps the code label cheap without fmt.
	switch code {
	case 200:
		return "200"
	case 201:
		return "201"
	case 202:
		return "202"
	case 204:
		return "204"
	case 400:
		return "400"
	case 404:
		return "404"
	case 409:
		return "409"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	default:
		return itoa(code)
	}
}

func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// statusWriter captures the response status code while preserving the
// streaming interface the SSE endpoint depends on.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush keeps SSE streaming working through the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
