package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// TraceParentHeader is the HTTP header carrying the W3C-style trace
// context between peers. The value follows the traceparent format:
//
//	00-<32 hex trace id>-<16 hex span id>-01
//
// The fleet wire client injects it on every outbound call; the service
// HTTP middleware extracts it, so steal acquisitions, lease renewals,
// owner-cache proxy GET/PUTs and batch fan-out all join one trace.
const TraceParentHeader = "Traceparent"

// SpanContext identifies one span within one distributed trace.
type SpanContext struct {
	TraceID string // 32 lowercase hex chars, non-zero
	SpanID  string // 16 lowercase hex chars, non-zero
	Parent  string // parent span ID ("" for a root span)
}

// NewSpanContext starts a fresh trace with a root span.
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: randHex(16), SpanID: randHex(8)}
}

// NewSpanID returns a fresh 16-hex-char span ID.
func NewSpanID() string { return randHex(8) }

// Child derives a new span in the same trace, parented on sc.
func (sc SpanContext) Child() SpanContext {
	return SpanContext{TraceID: sc.TraceID, SpanID: randHex(8), Parent: sc.SpanID}
}

// Valid reports whether sc carries a usable trace identity.
func (sc SpanContext) Valid() bool {
	return isHex(sc.TraceID, 32) && !allZero(sc.TraceID) &&
		isHex(sc.SpanID, 16) && !allZero(sc.SpanID)
}

// TraceParent renders sc in traceparent wire format. Invalid contexts
// render as "".
func (sc SpanContext) TraceParent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceParent parses a traceparent header value. Unknown versions
// are accepted as long as the trace/span IDs are well-formed, matching
// the W3C forward-compatibility rule.
func ParseTraceParent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	if !isHex(parts[0], 2) || parts[0] == "ff" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// ContextWithSpan returns a context carrying the span context.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKeySpan, sc)
}

// SpanFromContext returns the span context attached to ctx, if any.
// The zero SpanContext (Valid() == false) means "no trace".
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKeySpan).(SpanContext)
	return sc
}

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// Degenerate but non-zero: keeps traces joinable even if the
		// entropy source is broken.
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
	return hex.EncodeToString(b)
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
