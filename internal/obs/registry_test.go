package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestCounterDecreasePanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) on a counter did not panic")
		}
	}()
	c.Add(-1)
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "help")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("re-registered counter is a different series: %v, want 2", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("clash", "help")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.Counter("1bad", "h") },
		func() { r.CounterVec("ok_total", "h", "bad-label") },
		func() { r.HistogramVec("ok_seconds", "h", []float64{1}, "le") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid name accepted")
				}
			}()
			fn()
		}()
	}
}

// TestHistogramBoundaries pins the le-inclusive contract: a value
// exactly on an upper bound lands in that bound's bucket.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 5, 5.0000001, math.Inf(1)} {
		h.Observe(v)
	}
	d := h.c.hist
	want := []uint64{2, 2, 1} // {0.5,1}, {1.0000001,2}, {5}
	for i, w := range want {
		if got := d.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := d.inf.Load(); got != 2 {
		t.Errorf("+Inf bucket = %d, want 2", got)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "help", "method", "code")
	v.With("GET", "200").Add(3)
	v.With("POST", "500").Inc()
	v.With("GET", "200").Inc()
	if got := v.With("GET", "200").Value(); got != 4 {
		t.Fatalf(`With("GET","200") = %v, want 4`, got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("GET")
}

// TestGoldenExposition pins the exact exposition bytes for a registry
// covering every metric shape: bare and labelled counters/gauges, a
// histogram, label escaping, and callback collectors.
func TestGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("alpha_total", "A counter.").Add(3)
	g := r.Gauge("beta", "A gauge with\nnewline help and back\\slash.")
	g.Set(2.5)
	v := r.CounterVec("gamma_total", "Labelled.", "op")
	v.With(`quo"te`).Inc()
	v.With("plain").Add(2)
	h := r.Histogram("delta_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.1)
	h.Observe(7)
	r.GaugeFunc("epsilon", "Callback.", func() float64 { return 42 })
	r.GaugeFunc("zeta", "Callback vec.", func() float64 { return 1 }, "state", "queued")
	r.GaugeFunc("zeta", "Callback vec.", func() float64 { return 2 }, "state", "running")

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alpha_total A counter.
# TYPE alpha_total counter
alpha_total 3
# HELP beta A gauge with\nnewline help and back\\slash.
# TYPE beta gauge
beta 2.5
# HELP delta_seconds A histogram.
# TYPE delta_seconds histogram
delta_seconds_bucket{le="0.1"} 2
delta_seconds_bucket{le="1"} 2
delta_seconds_bucket{le="+Inf"} 3
delta_seconds_sum 7.15
delta_seconds_count 3
# HELP epsilon Callback.
# TYPE epsilon gauge
epsilon 42
# HELP gamma_total Labelled.
# TYPE gamma_total counter
gamma_total{op="plain"} 2
gamma_total{op="quo\"te"} 1
# HELP zeta Callback vec.
# TYPE zeta gauge
zeta{state="queued"} 1
zeta{state="running"} 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := LintExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("golden output fails lint: %v", err)
	}
}

// TestConcurrentIncrements drives every collector type from many
// goroutines; run under -race this is the concurrency-safety test, and
// the final values double as a lost-update check.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	g := r.Gauge("conc_gauge", "h")
	h := r.Histogram("conc_seconds", "h", []float64{0.5})
	v := r.CounterVec("conc_vec_total", "h", "worker")

	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := string(rune('a' + id))
			for k := 0; k < perG; k++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(k%2) + 0.25) // half ≤0.5, half above
				v.With(lbl).Inc()
			}
		}(i)
	}
	// Concurrent scrapes must not race with writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			_ = r.WritePrometheus(&b)
		}()
	}
	wg.Wait()

	total := float64(goroutines * perG)
	if got := c.Value(); got != total {
		t.Errorf("counter = %v, want %v", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %v, want %v", got, total)
	}
	if got := h.Count(); got != uint64(total) {
		t.Errorf("histogram count = %v, want %v", got, uint64(total))
	}
	if got := h.c.hist.counts[0].Load(); got != uint64(total/2) {
		t.Errorf("bucket[0] = %d, want %d", got, uint64(total/2))
	}
	for i := 0; i < goroutines; i++ {
		if got := v.With(string(rune('a' + i))).Value(); got != perG {
			t.Errorf("vec[%d] = %v, want %d", i, got, perG)
		}
	}
}

func TestVersion(t *testing.T) {
	bi := Version()
	if bi.GoVersion == "" {
		t.Error("GoVersion empty; ReadBuildInfo should work in tests")
	}
	if bi.String() == "" {
		t.Error("String() empty")
	}
}

// TestHistogramZeroObservations: a registered-but-never-observed
// histogram must still render a complete, lintable family — +Inf
// bucket, _sum and _count all present and zero. Prometheus treats a
// family with buckets missing as corrupt, so "no data yet" must not
// mean "no exposition".
func TestHistogramZeroObservations(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", "Never observed.", []float64{1, 10})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`idle_seconds_bucket{le="1"} 0`,
		`idle_seconds_bucket{le="10"} 0`,
		`idle_seconds_bucket{le="+Inf"} 0`,
		"idle_seconds_sum 0",
		"idle_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-observation exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("zero-observation histogram fails lint: %v", err)
	}
}

// TestHistogramInfObservation: +Inf observations land in the implicit
// +Inf bucket only, count toward _count, and the exposition still
// satisfies the +Inf-equals-count invariant the linter enforces.
func TestHistogramInfObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("spike_seconds", "Observed once at +Inf.", []float64{1})
	h.Observe(math.Inf(1))
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`spike_seconds_bucket{le="1"} 1`,
		`spike_seconds_bucket{le="+Inf"} 2`,
		"spike_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("+Inf exposition missing %q:\n%s", want, out)
		}
	}
	// The rendered _sum is +Inf; both the writer and the linter must
	// agree on its spelling.
	if !strings.Contains(out, "spike_seconds_sum +Inf") && !strings.Contains(out, "spike_seconds_sum Inf") {
		t.Errorf("+Inf sum not rendered:\n%s", out)
	}
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Errorf("+Inf histogram fails lint: %v", err)
	}
}
