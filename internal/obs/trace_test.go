package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceRecorderJSON(t *testing.T) {
	rec := NewTraceRecorder(0)
	start := time.Now()
	rec.Span("job j1", "job", start, start.Add(50*time.Millisecond),
		map[string]any{"kind": "one"})
	rec.Span("round 0", "sim", start, start.Add(10*time.Millisecond), nil)
	rec.Instant("cell 1/4", "sweep", map[string]any{"done": 1})

	var b strings.Builder
	if err := rec.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    int64          `json:"ts"`
			Dur   int64          `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[0]
	if span.Phase != "X" || span.Dur < 45000 || span.Dur > 55000 {
		t.Errorf("span = ph %q dur %dµs, want X ~50000µs", span.Phase, span.Dur)
	}
	if span.PID != 1 || span.TID != 1 {
		t.Errorf("span pid/tid = %d/%d, want 1/1", span.PID, span.TID)
	}
	if doc.TraceEvents[2].Phase != "i" {
		t.Errorf("instant ph = %q, want i", doc.TraceEvents[2].Phase)
	}
}

func TestTraceRecorderBounded(t *testing.T) {
	rec := NewTraceRecorder(10)
	for i := 0; i < 25; i++ {
		rec.Instant("ev", "test", nil)
	}
	if got := rec.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10 (capped)", got)
	}
	var b strings.Builder
	if err := rec.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	// Cap + the drop-count metadata instant.
	if len(doc.TraceEvents) != 11 {
		t.Fatalf("got %d events, want 11", len(doc.TraceEvents))
	}
	if got := doc.TraceEvents[10].Args["dropped"]; got != float64(15) {
		t.Errorf("dropped = %v, want 15", got)
	}
}

func TestNilTraceRecorderNoops(t *testing.T) {
	var rec *TraceRecorder
	rec.Span("x", "y", time.Now(), time.Now(), nil) // must not panic
	rec.Instant("x", "y", nil)
}
