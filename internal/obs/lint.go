package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// LintExposition is a promtool-style validity check for Prometheus text
// exposition output, used by tests and CI (no external binaries). It
// verifies:
//
//   - every sample line parses as `name[{labels}] value`
//   - every sample is preceded by # HELP and # TYPE lines for its family
//   - metric and label names match the Prometheus grammar
//   - TYPE is one of counter, gauge, histogram
//   - histogram bucket counts are cumulative and the +Inf bucket equals
//     the family's _count sample
//   - no duplicate series (same name + label block twice)
//
// It returns nil when the input is clean, or an error naming the first
// offending line.
func LintExposition(r io.Reader) error {
	return LintExpositions(r)
}

// LintExpositions lints several expositions as one logical scrape
// surface: each reader is checked like LintExposition, and family and
// series uniqueness is enforced across all of them. A process exposing
// two registries (say, a daemon's operational registry and a library's
// private one) must not let them both claim a metric name — Prometheus
// would see a duplicate family and reject the merged scrape.
func LintExpositions(rs ...io.Reader) error {
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)
	labelRe := regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)

	types := make(map[string]string) // family -> TYPE
	seen := make(map[string]bool)    // full series line key
	type histState struct {
		lastCum  float64
		infCum   float64
		hasInf   bool
		count    float64
		hasCount bool
	}
	hists := make(map[string]*histState) // family + base labels (le stripped)

	for ri, r := range rs {
		loc := func(lineNo int) string {
			if len(rs) == 1 {
				return fmt.Sprintf("line %d", lineNo)
			}
			return fmt.Sprintf("input %d line %d", ri+1, lineNo)
		}
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "# HELP ") {
				parts := strings.SplitN(line[len("# HELP "):], " ", 2)
				if len(parts) == 0 || !metricNameRe.MatchString(parts[0]) {
					return fmt.Errorf("%s: malformed HELP: %s", loc(lineNo), line)
				}
				continue
			}
			if strings.HasPrefix(line, "# TYPE ") {
				parts := strings.Fields(line[len("# TYPE "):])
				if len(parts) != 2 || !metricNameRe.MatchString(parts[0]) {
					return fmt.Errorf("%s: malformed TYPE: %s", loc(lineNo), line)
				}
				switch parts[1] {
				case "counter", "gauge", "histogram":
				default:
					return fmt.Errorf("%s: unknown TYPE %q", loc(lineNo), parts[1])
				}
				if _, dup := types[parts[0]]; dup {
					return fmt.Errorf("%s: duplicate TYPE for %q", loc(lineNo), parts[0])
				}
				types[parts[0]] = parts[1]
				continue
			}
			if strings.HasPrefix(line, "#") {
				continue // other comments are legal
			}

			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				return fmt.Errorf("%s: unparseable sample: %s", loc(lineNo), line)
			}
			name, labels, valStr := m[1], m[2], m[3]
			val, err := parseSampleValue(valStr)
			if err != nil {
				return fmt.Errorf("%s: bad value %q: %v", loc(lineNo), valStr, err)
			}

			family := name
			suffix := ""
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, s)
				if base != name && types[base] == "histogram" {
					family, suffix = base, s
					break
				}
			}
			if _, ok := types[family]; !ok {
				return fmt.Errorf("%s: sample %q has no preceding # TYPE", loc(lineNo), name)
			}

			var le string
			baseLabels := labels
			if labels != "" {
				inner := labels[1 : len(labels)-1]
				var kept []string
				for _, pair := range splitLabelPairs(inner) {
					lm := labelRe.FindStringSubmatch(pair)
					if lm == nil {
						return fmt.Errorf("%s: malformed label %q", loc(lineNo), pair)
					}
					if lm[1] == "le" && suffix == "_bucket" {
						le = lm[2]
						continue
					}
					kept = append(kept, pair)
				}
				baseLabels = ""
				if len(kept) > 0 {
					baseLabels = "{" + strings.Join(kept, ",") + "}"
				}
			}
			if suffix == "_bucket" && le == "" {
				return fmt.Errorf("%s: histogram bucket without le label", loc(lineNo))
			}

			key := name + labels
			if seen[key] {
				return fmt.Errorf("%s: duplicate series %s", loc(lineNo), key)
			}
			seen[key] = true

			if types[family] == "histogram" && suffix != "" {
				hk := family + baseLabels
				h := hists[hk]
				if h == nil {
					h = &histState{}
					hists[hk] = h
				}
				switch suffix {
				case "_bucket":
					if val < h.lastCum {
						return fmt.Errorf("%s: non-cumulative bucket in %s", loc(lineNo), hk)
					}
					h.lastCum = val
					if le == "+Inf" {
						h.infCum, h.hasInf = val, true
					}
				case "_count":
					h.count, h.hasCount = val, true
				}
			}
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	for hk, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram %s missing +Inf bucket", hk)
		}
		if !h.hasCount {
			return fmt.Errorf("histogram %s missing _count", hk)
		}
		if h.infCum != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", hk, h.infCum, h.count)
		}
	}
	return nil
}

func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// splitLabelPairs splits the interior of a label block on commas that
// are not inside quoted values (values may contain escaped quotes).
func splitLabelPairs(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(ch)
			i++
			b.WriteByte(s[i])
		case ch == '"':
			inQuote = !inQuote
			b.WriteByte(ch)
		case ch == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(ch)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}
