package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// RequestIDHeader is the HTTP header carrying the request correlation
// ID between client and server (satellite: log correlation across
// retries and SSE reconnects).
const RequestIDHeader = "X-Request-ID"

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") at the given minimum level.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
}

// NopLogger returns a logger that discards everything — the default for
// library code when the caller wires no logger in.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// NewRequestID returns a fresh 16-hex-char correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}
