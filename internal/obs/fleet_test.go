package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestFleetMetricsExposition: the qlecd_fleet_* family set renders a
// lint-clean exposition with every series the federation and advisor
// layers depend on.
func TestFleetMetricsExposition(t *testing.T) {
	r := NewRegistry()
	fm := NewFleetMetrics(r)
	fm.CellsExecuted.With("local").Add(3)
	fm.CellsExecuted.With("stolen").Add(2)
	fm.CellsStolenOut.Inc()
	fm.CellsStolenIn.Add(2)
	fm.ProxyHitsServed.Inc()
	fm.ProxyHitsFetched.Inc()
	fm.CacheReplications.Inc()
	fm.CellsCompleted.Add(5)
	fm.StealStarvation.Add(7)
	fm.CellWait.Observe(0.005)
	fm.CellWait.Observe(2.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, want := range []string{
		`qlecd_fleet_cells_executed_total{source="local"} 3`,
		`qlecd_fleet_cells_executed_total{source="stolen"} 2`,
		"qlecd_fleet_cells_stolen_out_total 1",
		"qlecd_fleet_cells_stolen_in_total 2",
		"qlecd_fleet_proxy_hits_served_total 1",
		"qlecd_fleet_proxy_hits_fetched_total 1",
		"qlecd_fleet_cache_replications_total 1",
		"qlecd_fleet_cells_completed_total 5",
		"qlecd_fleet_steal_starvation_total 7",
		`qlecd_fleet_cell_wait_seconds_bucket{le="0.01"} 1`,
		`qlecd_fleet_cell_wait_seconds_bucket{le="10"} 2`,
		"qlecd_fleet_cell_wait_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if err := LintExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("fleet exposition fails lint: %v\n%s", err, text)
	}

	// The advisor reads over-SLO counts off the snapshot: with a 0.1s SLO
	// one of the two observations is over.
	snap := fm.CellWait.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("snapshot count = %d, want 2", snap.Count)
	}
	if under := snap.CountAtMost(0.1); under != 1 {
		t.Fatalf("CountAtMost(0.1) = %d, want 1", under)
	}
}

const peerExpositionA = `# HELP qlecd_fleet_cells_completed_total Cells completed.
# TYPE qlecd_fleet_cells_completed_total counter
qlecd_fleet_cells_completed_total 4
# HELP qlecd_queue_depth Jobs queued.
# TYPE qlecd_queue_depth gauge
qlecd_queue_depth 2
# HELP qlecd_fleet_cell_wait_seconds Cell pool wait.
# TYPE qlecd_fleet_cell_wait_seconds histogram
qlecd_fleet_cell_wait_seconds_bucket{le="0.1"} 3
qlecd_fleet_cell_wait_seconds_bucket{le="1"} 4
qlecd_fleet_cell_wait_seconds_bucket{le="+Inf"} 4
qlecd_fleet_cell_wait_seconds_sum 0.9
qlecd_fleet_cell_wait_seconds_count 4
`

const peerExpositionB = `# HELP qlecd_fleet_cells_completed_total Cells completed.
# TYPE qlecd_fleet_cells_completed_total counter
qlecd_fleet_cells_completed_total 6
# HELP qlecd_queue_depth Jobs queued.
# TYPE qlecd_queue_depth gauge
qlecd_queue_depth 5
# HELP qlecd_fleet_cell_wait_seconds Cell pool wait.
# TYPE qlecd_fleet_cell_wait_seconds histogram
qlecd_fleet_cell_wait_seconds_bucket{le="0.1"} 1
qlecd_fleet_cell_wait_seconds_bucket{le="1"} 5
qlecd_fleet_cell_wait_seconds_bucket{le="+Inf"} 6
qlecd_fleet_cell_wait_seconds_sum 12.5
qlecd_fleet_cell_wait_seconds_count 6
`

func parseExposition(t *testing.T, text string) *Exposition {
	t.Helper()
	exp, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// TestMergeExpositions: counters and histogram buckets sum across
// instances (and stay cumulative), gauges fan out with an instance
// label, and the merged document still passes the linter after a
// write/re-parse round trip.
func TestMergeExpositions(t *testing.T) {
	merged, err := MergeExpositions([]Instance{
		{Name: "http://peer-a:8080", Exp: parseExposition(t, peerExpositionA)},
		{Name: "http://peer-b:8080", Exp: parseExposition(t, peerExpositionB)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Counter: 4 + 6.
	cf := merged.Family("qlecd_fleet_cells_completed_total")
	if cf == nil || len(cf.Samples) != 1 {
		t.Fatalf("completed counter merged to %+v, want one summed series", cf)
	}
	if cf.Samples[0].Value != 10 {
		t.Fatalf("summed counter = %g, want 10", cf.Samples[0].Value)
	}

	// Gauge: two series, one per instance.
	gf := merged.Family("qlecd_queue_depth")
	if gf == nil || len(gf.Samples) != 2 {
		t.Fatalf("queue depth merged to %+v, want two labeled series", gf)
	}
	byInst := map[string]float64{}
	for _, s := range gf.Samples {
		byInst[s.Label(InstanceLabel)] = s.Value
	}
	if byInst["http://peer-a:8080"] != 2 || byInst["http://peer-b:8080"] != 5 {
		t.Fatalf("gauge fan-out = %v", byInst)
	}

	// Histogram: buckets summed pairwise and still cumulative.
	hf := merged.Family("qlecd_fleet_cell_wait_seconds")
	if hf == nil {
		t.Fatal("histogram family missing after merge")
	}
	wantBuckets := map[string]float64{"0.1": 4, "1": 9, "+Inf": 10}
	var prev float64 = -1
	for _, s := range hf.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le := s.Label("le")
			if want, ok := wantBuckets[le]; !ok || s.Value != want {
				t.Errorf("bucket le=%s = %g, want %g", le, s.Value, want)
			}
			if s.Value < prev {
				t.Errorf("merged buckets not cumulative: le=%s holds %g after %g", le, s.Value, prev)
			}
			prev = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			if math.Abs(s.Value-13.4) > 1e-9 {
				t.Errorf("summed _sum = %g, want 13.4", s.Value)
			}
		case strings.HasSuffix(s.Name, "_count"):
			if s.Value != 10 {
				t.Errorf("summed _count = %g, want 10", s.Value)
			}
		}
	}

	// Round trip: write, lint, re-parse.
	var buf bytes.Buffer
	if err := WriteExposition(&buf, merged); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("merged exposition fails lint: %v\n%s", err, buf.String())
	}
	again := parseExposition(t, buf.String())
	if f := again.Family("qlecd_fleet_cells_completed_total"); f == nil || f.Samples[0].Value != 10 {
		t.Fatalf("round-tripped counter lost its value: %+v", f)
	}
}

// TestMergeExpositionsGaugePassThrough: a gauge that already carries an
// instance label (the federation handler's synthetic peer-up series)
// keeps it instead of being double-labeled.
func TestMergeExpositionsGaugePassThrough(t *testing.T) {
	synthetic := `# HELP qlecd_federate_peer_up Peer scrape status.
# TYPE qlecd_federate_peer_up gauge
qlecd_federate_peer_up{instance="http://peer-a:8080"} 1
qlecd_federate_peer_up{instance="http://peer-b:8080"} 0
`
	merged, err := MergeExpositions([]Instance{
		{Name: "__federator__", Exp: parseExposition(t, synthetic)},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := merged.Family("qlecd_federate_peer_up")
	if f == nil || len(f.Samples) != 2 {
		t.Fatalf("peer-up merged to %+v", f)
	}
	for _, s := range f.Samples {
		if got := s.Label(InstanceLabel); got == "__federator__" || got == "" {
			t.Errorf("pass-through gauge got instance %q, want the pre-set peer URL", got)
		}
		if len(s.Labels) != 1 {
			t.Errorf("pass-through gauge grew labels: %+v", s.Labels)
		}
	}
}

// TestMergeExpositionsTypeConflict: the same metric name exposed with
// different types on different instances must fail the merge — a
// silent pick would poison the whole federated scrape.
func TestMergeExpositionsTypeConflict(t *testing.T) {
	asCounter := `# TYPE qlecd_thing_total counter
qlecd_thing_total 1
`
	asGauge := `# TYPE qlecd_thing_total gauge
qlecd_thing_total 1
`
	_, err := MergeExpositions([]Instance{
		{Name: "a", Exp: parseExposition(t, asCounter)},
		{Name: "b", Exp: parseExposition(t, asGauge)},
	})
	if err == nil {
		t.Fatal("type conflict across instances merged without error")
	}
	if !strings.Contains(err.Error(), "qlecd_thing_total") {
		t.Fatalf("conflict error %q does not name the metric", err)
	}
}

// TestLintRejectsDuplicateSeries: the linter that gates the federated
// output catches a duplicated series — the failure mode a broken merge
// would produce.
func TestLintRejectsDuplicateSeries(t *testing.T) {
	dup := `# HELP qlecd_x_total x
# TYPE qlecd_x_total counter
qlecd_x_total 1
qlecd_x_total 2
`
	if err := LintExposition(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate series passed lint")
	}
}
