// Package protocol is the clustering-protocol plugin registry: the
// single source of truth for which protocols the harness can build and
// how to build them.
//
// Every protocol implementation package (internal/core, internal/baseline,
// internal/tdeec, internal/qleach, ...) self-registers a Descriptor from
// a small register.go in its own package init. Consumers — the
// experiment harness, the qlecd job service, and the CLIs — resolve
// protocols exclusively through Lookup/All, so adding a competitor is
// one new package plus one Register call: no switch statements to edit
// anywhere (ROADMAP item 4).
//
// Ordering is explicit, not init-order dependent: All() sorts by each
// descriptor's Order rank (ties by ID), so listings, report rows and
// conformance tables are deterministic across runs and across builds
// regardless of import graph shuffles.
package protocol

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"qlec/internal/cluster"
	"qlec/internal/energy"
	"qlec/internal/network"
)

// BuildContext carries everything a factory needs to bind a protocol
// instance to one deployed network. The experiment layer fills it from
// its Config; standalone callers (tests, tools) fill it by hand.
type BuildContext struct {
	// Net is the deployed network the instance will run on.
	Net *network.Network
	// Model holds the radio constants (Table 2).
	Model energy.Model
	// K is the cluster count per round, already clamped to [1, N].
	K int
	// TotalRounds is the planned lifespan R (Eq. 2 / Eq. 4 schedules).
	TotalRounds int
	// DeathLine excludes depleted nodes from head duty.
	DeathLine energy.Joules
	// Seed drives the protocol's deterministic RNG streams.
	Seed uint64
	// Bits is the data packet size L (Q-learning rewards, Eq. 18).
	Bits int
	// FCMLevels is the FCM baseline's hierarchy depth.
	FCMLevels int
	// Params are the resolved protocol tunables: the descriptor's
	// DefaultParams overlaid with the experiment's ProtocolParams.
	// Factories read them via Param.
	Params map[string]float64
}

// Param returns the named tunable, or def when absent.
func (b BuildContext) Param(name string, def float64) float64 {
	if v, ok := b.Params[name]; ok {
		return v
	}
	return def
}

// Factory builds one protocol instance bound to the context's network.
type Factory func(BuildContext) (cluster.Protocol, error)

// Descriptor declares one registrable protocol.
type Descriptor struct {
	// ID is the canonical protocol name ("QLEC", "k-means", "T-DEEC").
	// It is wire-visible (job requests, result tables, cache keys), so
	// renaming an ID invalidates cached results — treat it as frozen.
	ID string
	// Aliases are accepted spellings that resolve to ID ("kmeans",
	// "qleach"). Aliases never appear in output or cache keys.
	Aliases []string
	// Paper cites the algorithm's source.
	Paper string
	// Summary is a one-line description for listings.
	Summary string
	// Order ranks the descriptor in All(): listings, reports and the
	// conformance table iterate in ascending Order. Gaps are fine.
	Order int
	// Figure3Rank marks membership (1-based position) in the paper's
	// headline comparison set; 0 = not a Figure 3 protocol.
	Figure3Rank int
	// Ablation marks QLEC design-choice variants; tournament defaults
	// exclude them (they are diagnostic, not competitors).
	Ablation bool
	// DefaultParams are the protocol's tunables with their defaults,
	// overridable per experiment via Config.ProtocolParams.
	DefaultParams map[string]float64
	// Factory builds instances. Required.
	Factory Factory
}

// Registry is an isolated descriptor table. The package-level Default
// registry is the one protocol packages register into; tests build
// private registries to exercise edge cases without global state.
type Registry struct {
	mu      sync.RWMutex
	byID    map[string]*Descriptor
	byAlias map[string]string // lowercased alias or id → canonical id
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byID:    make(map[string]*Descriptor),
		byAlias: make(map[string]string),
	}
}

// Default is the process-wide registry. Protocol packages register into
// it from init; import qlec/internal/protocol/all (blank) to guarantee
// every in-tree protocol is present.
var Default = NewRegistry()

// Register adds a descriptor. It panics on an invalid descriptor or on
// any ID/alias collision — registration happens in package init, where
// a duplicate is a programming error that must not ship.
func (r *Registry) Register(d Descriptor) {
	if d.ID == "" {
		panic("protocol: Register with empty ID")
	}
	if d.Factory == nil {
		panic(fmt.Sprintf("protocol: Register(%q) with nil Factory", d.ID))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[d.ID]; dup {
		panic(fmt.Sprintf("protocol: duplicate registration of %q", d.ID))
	}
	keys := append([]string{d.ID}, d.Aliases...)
	for _, k := range keys {
		lk := strings.ToLower(k)
		if prev, dup := r.byAlias[lk]; dup {
			panic(fmt.Sprintf("protocol: name %q of %q collides with %q", k, d.ID, prev))
		}
	}
	dc := d
	dc.Aliases = append([]string(nil), d.Aliases...)
	if d.DefaultParams != nil {
		dc.DefaultParams = make(map[string]float64, len(d.DefaultParams))
		for k, v := range d.DefaultParams {
			dc.DefaultParams[k] = v
		}
	}
	r.byID[d.ID] = &dc
	for _, k := range keys {
		r.byAlias[strings.ToLower(k)] = d.ID
	}
}

// Lookup resolves a protocol name — canonical ID or alias, case
// insensitive — to its descriptor.
func (r *Registry) Lookup(name string) (Descriptor, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byAlias[strings.ToLower(name)]
	if !ok {
		return Descriptor{}, false
	}
	return *r.byID[id], true
}

// Canonical maps any accepted spelling to the canonical ID; unknown
// names pass through unchanged (validation rejects them later, with the
// original spelling in the error).
func (r *Registry) Canonical(name string) string {
	if d, ok := r.Lookup(name); ok {
		return d.ID
	}
	return name
}

// Known reports whether name resolves to a registered protocol. O(1).
func (r *Registry) Known(name string) bool {
	_, ok := r.Lookup(name)
	return ok
}

// All returns every descriptor in deterministic order: ascending Order
// rank, ties by ID.
func (r *Registry) All() []Descriptor {
	r.mu.RLock()
	out := make([]Descriptor, 0, len(r.byID))
	for _, d := range r.byID {
		out = append(out, *d)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// IDs returns the canonical ids in All() order.
func (r *Registry) IDs() []string {
	all := r.All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.ID
	}
	return out
}

// Figure3 returns the paper's headline comparison set in Figure3Rank
// order.
func (r *Registry) Figure3() []Descriptor {
	var out []Descriptor
	for _, d := range r.All() {
		if d.Figure3Rank > 0 {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Figure3Rank < out[j].Figure3Rank })
	return out
}

// Nearest returns the registered name (canonical ID or alias) closest
// to the given unknown name by case-insensitive edit distance, as the
// canonical ID — the "did you mean" suggestion for validation errors.
// An empty registry returns "".
func (r *Registry) Nearest(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	lname := strings.ToLower(name)
	best, bestD := "", -1
	// Iterate names sorted so equal-distance ties resolve the same way
	// every run.
	keys := make([]string, 0, len(r.byAlias))
	for k := range r.byAlias {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := editDistance(lname, k)
		if bestD < 0 || d < bestD {
			best, bestD = r.byAlias[k], d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// MergeParams resolves a protocol's effective tunables: the
// descriptor's defaults overlaid with the experiment's overrides.
// Returns nil when both are empty, so the common (no-tunable) path
// allocates nothing.
func MergeParams(defaults, overrides map[string]float64) map[string]float64 {
	if len(defaults) == 0 && len(overrides) == 0 {
		return nil
	}
	out := make(map[string]float64, len(defaults)+len(overrides))
	for k, v := range defaults {
		out[k] = v
	}
	for k, v := range overrides {
		out[k] = v
	}
	return out
}

// Info is a descriptor's serializable projection — what qlecd serves at
// GET /v1/protocols and the CLIs print under -list-protocols.
type Info struct {
	ID            string             `json:"id"`
	Aliases       []string           `json:"aliases,omitempty"`
	Paper         string             `json:"paper,omitempty"`
	Summary       string             `json:"summary,omitempty"`
	Figure3Rank   int                `json:"figure3Rank,omitempty"`
	Ablation      bool               `json:"ablation,omitempty"`
	DefaultParams map[string]float64 `json:"defaultParams,omitempty"`
}

// Infos projects All() for serialization.
func (r *Registry) Infos() []Info {
	all := r.All()
	out := make([]Info, len(all))
	for i, d := range all {
		out[i] = Info{
			ID:            d.ID,
			Aliases:       d.Aliases,
			Paper:         d.Paper,
			Summary:       d.Summary,
			Figure3Rank:   d.Figure3Rank,
			Ablation:      d.Ablation,
			DefaultParams: d.DefaultParams,
		}
	}
	return out
}

// Package-level wrappers over Default, for the common case.

// Register adds a descriptor to the Default registry.
func Register(d Descriptor) { Default.Register(d) }

// Lookup resolves a name against the Default registry.
func Lookup(name string) (Descriptor, bool) { return Default.Lookup(name) }

// Canonical resolves a name to its canonical ID via Default.
func Canonical(name string) string { return Default.Canonical(name) }

// Known reports whether the Default registry knows the name.
func Known(name string) bool { return Default.Known(name) }

// All lists the Default registry's descriptors in deterministic order.
func All() []Descriptor { return Default.All() }

// IDs lists the Default registry's canonical ids in All() order.
func IDs() []string { return Default.IDs() }

// Figure3 lists the paper's comparison set from the Default registry.
func Figure3() []Descriptor { return Default.Figure3() }

// Nearest suggests the closest registered name from Default.
func Nearest(name string) string { return Default.Nearest(name) }

// Infos projects the Default registry for serialization.
func Infos() []Info { return Default.Infos() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
