// Package all links every in-tree protocol implementation into the
// binary so their init-time registrations land in protocol.Default.
// Import it blank from any package that needs the full registry:
//
//	import _ "qlec/internal/protocol/all"
//
// A new protocol package joins the roster by adding its blank import
// here — the only central edit adding a protocol requires.
package all

import (
	_ "qlec/internal/baseline" // FCM, k-means, LEACH, direct-to-BS
	_ "qlec/internal/core"     // QLEC and its ablation ladder
	_ "qlec/internal/qleach"   // sectored LEACH (arXiv 1303.5240)
	_ "qlec/internal/tdeec"    // heterogeneous-tier DEEC (arXiv 1408.4112)
)
