package protocol

import (
	"reflect"
	"testing"

	"qlec/internal/cluster"
)

func stubFactory(BuildContext) (cluster.Protocol, error) { return nil, nil }

func TestRegisterLookupAliases(t *testing.T) {
	r := NewRegistry()
	r.Register(Descriptor{ID: "Alpha", Aliases: []string{"a", "first"}, Order: 1, Factory: stubFactory})
	for _, name := range []string{"Alpha", "alpha", "ALPHA", "a", "A", "first", "FIRST"} {
		d, ok := r.Lookup(name)
		if !ok || d.ID != "Alpha" {
			t.Fatalf("Lookup(%q) = (%v, %v), want Alpha", name, d.ID, ok)
		}
	}
	if _, ok := r.Lookup("beta"); ok {
		t.Fatal("Lookup of unregistered name succeeded")
	}
	if !r.Known("first") || r.Known("beta") {
		t.Fatal("Known gave wrong answers")
	}
	if got := r.Canonical("FIRST"); got != "Alpha" {
		t.Fatalf("Canonical(FIRST) = %q, want Alpha", got)
	}
	if got := r.Canonical("nope"); got != "nope" {
		t.Fatalf("Canonical passes unknown names through, got %q", got)
	}
}

func TestRegisterPanicsOnDuplicates(t *testing.T) {
	cases := []struct {
		name string
		do   func(r *Registry)
	}{
		{"empty id", func(r *Registry) { r.Register(Descriptor{Factory: stubFactory}) }},
		{"nil factory", func(r *Registry) { r.Register(Descriptor{ID: "x"}) }},
		{"dup id", func(r *Registry) {
			r.Register(Descriptor{ID: "x", Factory: stubFactory})
			r.Register(Descriptor{ID: "x", Factory: stubFactory})
		}},
		{"dup id case-insensitive", func(r *Registry) {
			r.Register(Descriptor{ID: "x", Factory: stubFactory})
			r.Register(Descriptor{ID: "X", Factory: stubFactory})
		}},
		{"alias collides with id", func(r *Registry) {
			r.Register(Descriptor{ID: "x", Factory: stubFactory})
			r.Register(Descriptor{ID: "y", Aliases: []string{"x"}, Factory: stubFactory})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Register did not panic")
				}
			}()
			tc.do(NewRegistry())
		})
	}
}

func TestAllDeterministicOrder(t *testing.T) {
	build := func(order ...int) *Registry {
		// Register in the given (shuffled) order; All must not care.
		r := NewRegistry()
		names := []string{"c", "a", "b", "d"}
		ranks := []int{30, 10, 20, 20}
		for _, i := range order {
			r.Register(Descriptor{ID: names[i], Order: ranks[i], Factory: stubFactory})
		}
		return r
	}
	want := []string{"a", "b", "d", "c"} // rank 10, 20, 20 (tie → id), 30
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}} {
		if got := build(order...).IDs(); !reflect.DeepEqual(got, want) {
			t.Fatalf("IDs() after registration order %v = %v, want %v", order, got, want)
		}
	}
}

func TestFigure3Ordering(t *testing.T) {
	r := NewRegistry()
	r.Register(Descriptor{ID: "third", Order: 1, Figure3Rank: 3, Factory: stubFactory})
	r.Register(Descriptor{ID: "extra", Order: 2, Factory: stubFactory})
	r.Register(Descriptor{ID: "first", Order: 3, Figure3Rank: 1, Factory: stubFactory})
	r.Register(Descriptor{ID: "second", Order: 4, Figure3Rank: 2, Factory: stubFactory})
	var got []string
	for _, d := range r.Figure3() {
		got = append(got, d.ID)
	}
	if want := []string{"first", "second", "third"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Figure3() = %v, want %v", got, want)
	}
}

func TestNearestSuggestsClosestName(t *testing.T) {
	r := NewRegistry()
	r.Register(Descriptor{ID: "QLEC", Factory: stubFactory})
	r.Register(Descriptor{ID: "k-means", Aliases: []string{"kmeans"}, Factory: stubFactory})
	r.Register(Descriptor{ID: "LEACH", Factory: stubFactory})
	cases := map[string]string{
		"QLEK":   "QLEC",
		"qlec2":  "QLEC",
		"kmeens": "k-means", // via the alias
		"leech":  "LEACH",
	}
	for in, want := range cases {
		if got := r.Nearest(in); got != want {
			t.Errorf("Nearest(%q) = %q, want %q", in, got, want)
		}
	}
	if got := NewRegistry().Nearest("x"); got != "" {
		t.Fatalf("empty registry Nearest = %q, want empty", got)
	}
}

func TestRegisterCopiesParams(t *testing.T) {
	r := NewRegistry()
	params := map[string]float64{"p": 1}
	r.Register(Descriptor{ID: "x", DefaultParams: params, Factory: stubFactory})
	params["p"] = 99
	d, _ := r.Lookup("x")
	if d.DefaultParams["p"] != 1 {
		t.Fatal("Register did not copy DefaultParams")
	}
}

func TestMergeParams(t *testing.T) {
	if MergeParams(nil, nil) != nil {
		t.Fatal("MergeParams(nil, nil) should be nil")
	}
	got := MergeParams(map[string]float64{"a": 1, "b": 2}, map[string]float64{"b": 3, "c": 4})
	want := map[string]float64{"a": 1, "b": 3, "c": 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeParams = %v, want %v", got, want)
	}
}

func TestBuildContextParam(t *testing.T) {
	b := BuildContext{Params: map[string]float64{"set": 2.5}}
	if got := b.Param("set", 1); got != 2.5 {
		t.Fatalf("Param(set) = %v, want 2.5", got)
	}
	if got := b.Param("unset", 1.5); got != 1.5 {
		t.Fatalf("Param(unset) = %v, want default 1.5", got)
	}
}

func TestInfosProjection(t *testing.T) {
	r := NewRegistry()
	r.Register(Descriptor{
		ID: "x", Aliases: []string{"ex"}, Paper: "p", Summary: "s",
		Order: 1, Figure3Rank: 2, Ablation: true,
		DefaultParams: map[string]float64{"q": 1},
		Factory:       stubFactory,
	})
	infos := r.Infos()
	if len(infos) != 1 {
		t.Fatalf("Infos len = %d", len(infos))
	}
	in := infos[0]
	if in.ID != "x" || in.Paper != "p" || in.Summary != "s" || in.Figure3Rank != 2 ||
		!in.Ablation || in.DefaultParams["q"] != 1 || len(in.Aliases) != 1 {
		t.Fatalf("Infos projection wrong: %+v", in)
	}
}
