package fleet

import (
	"fmt"
	"sync"
	"time"
)

// AdvisorConfig tunes the autoscale advisor. The zero value (SLO == 0)
// disables it entirely.
type AdvisorConfig struct {
	// SLO is the target bound on queue wait (jobs and cells alike): an
	// observation is "bad" when it waited longer than this. <= 0
	// disables the advisor.
	SLO time.Duration
	// FastWindow / SlowWindow are the two burn-rate windows, SRE-style:
	// scaling up requires the over-SLO fraction to exceed FastBurn over
	// the fast window AND SlowBurn over the slow window, so a brief
	// spike (fast only) or a long-ago incident still draining out of a
	// single long window (slow only) cannot trigger alone.
	FastWindow time.Duration // default 1m
	SlowWindow time.Duration // default 5m
	FastBurn   float64       // default 0.5  (half of recent waits over SLO)
	SlowBurn   float64       // default 0.25
	// Hysteresis is how long a *lower* raw target must hold before the
	// published recommendation drops to it. Scale-up is immediate (react
	// fast to pain), scale-down and return-to-zero are damped (relax
	// slowly) so the recommendation cannot flap with the queue.
	Hysteresis time.Duration // default 30s
	// MaxStep caps |delta| per recommendation. Default 4.
	MaxStep int
}

func (c AdvisorConfig) withDefaults() AdvisorConfig {
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 5 * time.Minute
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 0.5
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 0.25
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 30 * time.Second
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 4
	}
	return c
}

// Sample is one observation of the daemon's load, fed to the advisor on
// a fixed cadence. WaitCount/WaitOverSLO/Starved are cumulative
// counters (histogram count and over-SLO count summed over the job
// queue-wait and fleet cell-wait histograms); the advisor differences
// them across its windows.
type Sample struct {
	At          time.Time
	WaitCount   uint64 // cumulative queue-wait observations (jobs + cells)
	WaitOverSLO uint64 // cumulative observations above the SLO
	Starved     uint64 // cumulative empty-handed executor polls
	Backlog     int    // queued jobs + pending cells right now
	ReadyPeers  int    // ready fleet members, self included
	Workers     int    // this daemon's job + cell workers
	BusyWorkers int
}

// Advice is the advisor's current recommendation: Delta peers to add
// (positive) or remove (negative), with the reasoning and the burn
// rates that produced it.
type Advice struct {
	Delta      int       `json:"delta"`
	Reason     string    `json:"reason"`
	FastBurn   float64   `json:"fastBurn"`
	SlowBurn   float64   `json:"slowBurn"`
	SLOSeconds float64   `json:"sloSeconds"`
	At         time.Time `json:"at"`
}

// Advisor turns queue-wait burn rates and steal starvation into a
// scale recommendation. It is deliberately pure state-machine: callers
// feed Samples (with their own clock) and read Advice, so every
// transition is unit-testable with synthetic time.
type Advisor struct {
	cfg AdvisorConfig

	mu           sync.Mutex
	hist         []Sample
	current      Advice
	pendingDelta int
	pendingSince time.Time
	hasPending   bool
}

// NewAdvisor builds an advisor; if cfg.SLO <= 0 every Observe returns
// the zero Advice and the advisor is effectively off.
func NewAdvisor(cfg AdvisorConfig) *Advisor {
	return &Advisor{cfg: cfg.withDefaults()}
}

// Enabled reports whether an SLO is configured.
func (a *Advisor) Enabled() bool { return a != nil && a.cfg.SLO > 0 }

// SLO returns the configured wait-time SLO (0 when disabled).
func (a *Advisor) SLO() time.Duration {
	if a == nil {
		return 0
	}
	return a.cfg.SLO
}

// Current returns the latest published advice.
func (a *Advisor) Current() Advice {
	if a == nil {
		return Advice{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.current
}

// Observe feeds one load sample and returns the (possibly updated)
// published advice.
func (a *Advisor) Observe(s Sample) Advice {
	if !a.Enabled() {
		return Advice{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	a.hist = append(a.hist, s)
	a.prune(s.At)

	fast := a.burn(s, a.cfg.FastWindow)
	slow := a.burn(s, a.cfg.SlowWindow)
	raw, reason := a.rawTarget(s, fast, slow)

	// Upward moves publish immediately; downward moves (including back
	// to zero) must hold for the hysteresis window first.
	publish := raw > a.current.Delta
	if raw < a.current.Delta {
		if !a.hasPending || a.pendingDelta != raw {
			a.pendingDelta, a.pendingSince, a.hasPending = raw, s.At, true
		} else if s.At.Sub(a.pendingSince) >= a.cfg.Hysteresis {
			publish = true
		}
	}
	if raw == a.current.Delta || publish {
		a.hasPending = false
	}
	if publish || raw == a.current.Delta {
		a.current = Advice{
			Delta: raw, Reason: reason,
			FastBurn: fast, SlowBurn: slow,
			SLOSeconds: a.cfg.SLO.Seconds(), At: s.At,
		}
	} else {
		// Keep the published delta but refresh the observed burn rates.
		a.current.FastBurn, a.current.SlowBurn, a.current.At = fast, slow, s.At
	}
	return a.current
}

// prune drops samples that have aged out of the slow window, always
// keeping at least one older sample as the window baseline.
func (a *Advisor) prune(now time.Time) {
	cutoff := now.Add(-a.cfg.SlowWindow)
	i := 0
	for i < len(a.hist)-1 && !a.hist[i+1].At.After(cutoff) {
		i++
	}
	if i > 0 {
		a.hist = append(a.hist[:0], a.hist[i:]...)
	}
}

// burn computes the over-SLO fraction of wait observations across the
// trailing window: Δover / Δcount against the newest sample at least
// window old (or the oldest held).
func (a *Advisor) burn(cur Sample, window time.Duration) float64 {
	base := a.hist[0]
	cutoff := cur.At.Add(-window)
	for _, s := range a.hist {
		if s.At.After(cutoff) {
			break
		}
		base = s
	}
	dCount := cur.WaitCount - base.WaitCount
	if dCount == 0 {
		return 0
	}
	return float64(cur.WaitOverSLO-base.WaitOverSLO) / float64(dCount)
}

// rawTarget is the undamped recommendation for the current sample.
func (a *Advisor) rawTarget(s Sample, fast, slow float64) (int, string) {
	slo := a.cfg.SLO
	if fast >= a.cfg.FastBurn && slow >= a.cfg.SlowBurn {
		// Size the step by how outnumbered the workers are, capped.
		delta := 1
		if s.Workers > 0 {
			delta = (s.Backlog + s.Workers - 1) / s.Workers
		}
		if delta < 1 {
			delta = 1
		}
		if delta > a.cfg.MaxStep {
			delta = a.cfg.MaxStep
		}
		return delta, fmt.Sprintf(
			"queue wait over the %s SLO: burn %.2f/%.2f across %s/%s windows, backlog %d on %d workers — add %d peer(s)",
			slo, fast, slow, a.cfg.FastWindow, a.cfg.SlowWindow, s.Backlog, s.Workers, delta)
	}
	// Scale down only when the whole slow window was clean, executors
	// are starving for work, nothing is backlogged, and there is a peer
	// to spare.
	if s.Backlog == 0 && slow == 0 && s.ReadyPeers > 1 && a.starvedOver(s, a.cfg.SlowWindow) {
		return -1, fmt.Sprintf(
			"no waits over the %s SLO in %s, empty backlog and starving executors across %d ready peers — remove 1 peer",
			slo, a.cfg.SlowWindow, s.ReadyPeers)
	}
	return 0, fmt.Sprintf("queue wait within the %s SLO (burn %.2f/%.2f)", slo, fast, slow)
}

// starvedOver reports whether executors went empty-handed during the
// trailing window (the starvation counter rose) with a baseline old
// enough to cover it.
func (a *Advisor) starvedOver(cur Sample, window time.Duration) bool {
	base := a.hist[0]
	if cur.At.Sub(base.At) < window {
		return false // not enough history to judge idleness yet
	}
	cutoff := cur.At.Add(-window)
	for _, s := range a.hist {
		if s.At.After(cutoff) {
			break
		}
		base = s
	}
	return cur.Starved > base.Starved
}
