package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestMembershipOwnerSkipsUnready: ownership degrades clockwise past
// unready peers and falls back to self when the whole fleet is down.
func TestMembershipOwnerSkipsUnready(t *testing.T) {
	m := NewMembership("http://self:1", nil, 0) // nil probe: peers trusted on Add
	m.Add("http://b:1")
	m.Add("http://c:1")

	keys := testKeys(2000)
	owners := make(map[string]bool)
	for _, k := range keys {
		owners[m.Owner(k)] = true
	}
	if len(owners) != 3 {
		t.Fatalf("ownership covers %d peers, want 3: %v", len(owners), owners)
	}

	m.MarkReady("http://b:1", false, "connection refused")
	for _, k := range keys {
		if o := m.Owner(k); o == "http://b:1" {
			t.Fatalf("unready peer still owns %s", k)
		}
	}
	m.MarkReady("http://c:1", false, "connection refused")
	for _, k := range keys[:100] {
		if o := m.Owner(k); o != "http://self:1" {
			t.Fatalf("owner with fleet down = %s, want self", o)
		}
	}
}

// TestMembershipProbeLoop: the prober flips peers ready/unready from
// live probe outcomes.
func TestMembershipProbeLoop(t *testing.T) {
	var mu sync.Mutex
	healthy := map[string]bool{"http://b:1": true, "http://c:1": false}
	probe := func(ctx context.Context, peer string) error {
		mu.Lock()
		defer mu.Unlock()
		if healthy[peer] {
			return nil
		}
		return errors.New("503 draining")
	}
	m := NewMembership("http://self:1", probe, 5*time.Millisecond)
	m.Add("http://b:1")
	m.Add("http://c:1")
	if got := m.ReadyOthers(); len(got) != 0 {
		t.Fatalf("peers ready before first probe: %v", got)
	}
	m.Start()
	defer m.Stop()

	waitFor := func(want string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if got := m.ReadyOthers(); len(got) == 1 && got[0] == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("ready peers never became [%s]: %v", want, m.Peers())
	}
	waitFor("http://b:1")
	mu.Lock()
	healthy["http://b:1"] = false
	healthy["http://c:1"] = true
	mu.Unlock()
	waitFor("http://c:1")
	for _, st := range m.Peers() {
		if st.ID == "http://b:1" && st.Err == "" {
			t.Fatal("downed peer has no recorded probe error")
		}
	}
}

func TestMembershipAddRemove(t *testing.T) {
	m := NewMembership("http://self:1", nil, 0)
	if m.Add("http://self:1") || m.Add("") {
		t.Fatal("self/empty add accepted")
	}
	if !m.Add("http://b:1") || m.Add("http://b:1") {
		t.Fatal("add not idempotent-false on duplicate")
	}
	ps := m.Peers()
	if len(ps) != 2 || !ps[0].Self || ps[0].ID != "http://self:1" {
		t.Fatalf("peers = %+v", ps)
	}
	m.Remove("http://b:1")
	if len(m.Peers()) != 1 {
		t.Fatalf("remove failed: %+v", m.Peers())
	}
	m.Remove("http://self:1")
	if len(m.Peers()) != 1 {
		t.Fatal("self removed")
	}
}
