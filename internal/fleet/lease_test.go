package fleet

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func cell(i int) Cell {
	return Cell{Hash: fmt.Sprintf("%064d", i), Spec: json.RawMessage(`{"i":` + fmt.Sprint(i) + `}`)}
}

func TestLeaseAcquireCompleteLifecycle(t *testing.T) {
	tb := NewTable()
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		if !tb.Offer(cell(i)) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	if tb.Offer(cell(2)) {
		t.Fatal("duplicate offer accepted")
	}
	if p, l, _ := tb.Stats(); p != 5 || l != 0 {
		t.Fatalf("stats = (%d,%d), want (5,0)", p, l)
	}

	leases := tb.Acquire("peerA", 3, time.Minute, now)
	if len(leases) != 3 {
		t.Fatalf("acquired %d, want 3", len(leases))
	}
	// FIFO: the first three offered cells, in order.
	for i, l := range leases {
		if l.Cell.Hash != cell(i).Hash {
			t.Fatalf("lease %d is %s, want %s", i, l.Cell.Hash, cell(i).Hash)
		}
		if l.Holder != "peerA" {
			t.Fatalf("holder = %q", l.Holder)
		}
	}
	if p, l, _ := tb.Stats(); p != 2 || l != 3 {
		t.Fatalf("stats = (%d,%d), want (2,3)", p, l)
	}

	if !tb.Complete(leases[0].Cell.Hash) {
		t.Fatal("complete of leased cell failed")
	}
	if tb.Complete(leases[0].Cell.Hash) {
		t.Fatal("duplicate complete reported true")
	}
	// Completing a still-pending cell (cache hit from elsewhere) works too.
	if !tb.Complete(cell(4).Hash) {
		t.Fatal("complete of pending cell failed")
	}
	if p, l, _ := tb.Stats(); p != 1 || l != 2 {
		t.Fatalf("stats = (%d,%d), want (1,2)", p, l)
	}
	// The completed-while-pending hash must not resurface via Acquire.
	rest := tb.Acquire("peerB", 10, time.Minute, now)
	if len(rest) != 1 || rest[0].Cell.Hash != cell(3).Hash {
		t.Fatalf("acquire after completes = %+v, want just %s", rest, cell(3).Hash)
	}
}

// TestLeaseExpiry: a dead holder's cells return to the pool at TTL and
// are re-leasable; a late completion from the "dead" peer still lands.
func TestLeaseExpiry(t *testing.T) {
	tb := NewTable()
	now := time.Unix(0, 0)
	for i := 0; i < 3; i++ {
		tb.Offer(cell(i))
	}
	leases := tb.Acquire("doomed", 2, 10*time.Second, now)
	if len(leases) != 2 {
		t.Fatalf("acquired %d, want 2", len(leases))
	}

	if got := tb.ExpireDue(now.Add(9 * time.Second)); len(got) != 0 {
		t.Fatalf("expired early: %v", got)
	}
	repooled := tb.ExpireDue(now.Add(10 * time.Second))
	if len(repooled) != 2 {
		t.Fatalf("repooled %d cells, want 2", len(repooled))
	}
	if p, l, exp := tb.Stats(); p != 3 || l != 0 || exp != 2 {
		t.Fatalf("stats = (%d,%d,exp=%d), want (3,0,2)", p, l, exp)
	}
	// An expired lease can no longer renew.
	if n := tb.Renew([]string{leases[0].ID}, time.Minute, now.Add(11*time.Second)); n != 0 {
		t.Fatalf("renewed %d expired leases, want 0", n)
	}
	// Re-lease to a live peer.
	again := tb.Acquire("alive", 10, time.Minute, now.Add(11*time.Second))
	if len(again) != 3 {
		t.Fatalf("re-acquired %d, want 3", len(again))
	}
	// The doomed peer finishes anyway and reports by hash: idempotent,
	// still removes the cell so the live holder's completion is a no-op.
	if !tb.Complete(leases[0].Cell.Hash) {
		t.Fatal("late completion rejected")
	}
	if tb.Complete(leases[0].Cell.Hash) {
		t.Fatal("second completion reported true")
	}
}

func TestLeaseRenewKeepsAlive(t *testing.T) {
	tb := NewTable()
	now := time.Unix(0, 0)
	tb.Offer(cell(1))
	l := tb.Acquire("w", 1, 10*time.Second, now)[0]
	if n := tb.Renew([]string{l.ID}, 10*time.Second, now.Add(8*time.Second)); n != 1 {
		t.Fatalf("renew = %d, want 1", n)
	}
	// Original expiry has passed, renewed one has not.
	if got := tb.ExpireDue(now.Add(12 * time.Second)); len(got) != 0 {
		t.Fatalf("renewed lease expired: %v", got)
	}
	if got := tb.ExpireDue(now.Add(18 * time.Second)); len(got) != 1 {
		t.Fatalf("renewed lease did not expire at its new deadline: %v", got)
	}
}

func TestLeaseWithdraw(t *testing.T) {
	tb := NewTable()
	now := time.Unix(0, 0)
	tb.Offer(cell(1))
	tb.Offer(cell(2))
	tb.Acquire("w", 1, time.Minute, now)
	if tb.Withdraw(cell(1).Hash) {
		t.Fatal("withdrew a leased cell")
	}
	if !tb.Withdraw(cell(2).Hash) {
		t.Fatal("failed to withdraw a pending cell")
	}
	if got := tb.Acquire("w", 10, time.Minute, now); len(got) != 0 {
		t.Fatalf("withdrawn cell still acquirable: %v", got)
	}
}
