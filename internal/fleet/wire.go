package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"qlec/internal/obs"
	"qlec/internal/prof"
)

// Wire types of the peer-to-peer cell protocol, mounted by
// internal/service under /v1/fleet/... Every body is small JSON; cell
// specs and result envelopes travel as raw messages so this package
// never depends on the service's schema.

// StealRequest asks a peer's coordinator pool for up to Max cells.
type StealRequest struct {
	Worker string `json:"worker"` // the thief's advertised base URL
	Max    int    `json:"max"`
}

// StealResponse grants zero or more leases.
type StealResponse struct {
	Leases []Lease `json:"leases"`
}

// CompleteRequest reports one executed cell back to its coordinator.
// Either Result carries the serialized result envelope, or Error the
// execution failure.
type CompleteRequest struct {
	Worker  string          `json:"worker"`
	LeaseID string          `json:"leaseId"`
	Hash    string          `json:"hash"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Usage is the executing daemon's resource bill for the cell, so
	// the coordinator can roll true cost up into its job and batch
	// records no matter where the cell ran.
	Usage *prof.Usage `json:"usage,omitempty"`
}

// ProfileCaptureRequest asks a peer to capture one profile into its
// local artifact store (the body of POST /v1/profiles).
type ProfileCaptureRequest struct {
	Kind    string  `json:"kind"`
	Seconds float64 `json:"seconds,omitempty"`
}

// RenewRequest extends held leases.
type RenewRequest struct {
	Worker   string   `json:"worker"`
	LeaseIDs []string `json:"leaseIds"`
}

// RenewResponse reports how many of the leases were still live.
type RenewResponse struct {
	Renewed int `json:"renewed"`
}

// JoinRequest announces a peer to the fleet.
type JoinRequest struct {
	Peer string `json:"peer"`
}

// Status is the GET /v1/fleet payload: the answering daemon's roster
// and pool state.
type Status struct {
	Self         string      `json:"self"`
	Peers        []PeerState `json:"peers"`
	CellsPending int         `json:"cellsPending"`
	CellsLeased  int         `json:"cellsLeased"`
	LeaseExpiry  uint64      `json:"leaseExpiries"`
	OpenBatches  int         `json:"openBatches"`
	// Advice is the autoscale advisor's current recommendation; absent
	// when no SLO is configured.
	Advice *Advice `json:"advice,omitempty"`
}

// Client is the thin HTTP client daemons use to talk to each other. It
// deliberately does not retry: fleet operations are periodic (steal
// polls, probes) or idempotent-by-hash (complete, cache put), and the
// caller's loop is the retry.
type Client struct {
	hc *http.Client
}

// NewClient builds a peer client; timeout <= 0 defaults to 10s.
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{hc: &http.Client{Timeout: timeout}}
}

// ErrNotFound reports a 404 from a peer (no cached result).
var ErrNotFound = errors.New("fleet: not found")

// do runs one JSON round trip against peer+path.
func (c *Client) do(ctx context.Context, method, peer, path string, in, out any) error {
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fleet: encode %s: %w", path, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(peer, "/")+path, rd)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Every peer call joins the caller's distributed trace, if any: the
	// receiving daemon's middleware extracts this header, so steals,
	// renewals, completions and cache proxying thread one trace ID
	// across the fleet.
	if sc := obs.SpanFromContext(ctx); sc.Valid() {
		req.Header.Set(obs.TraceParentHeader, sc.TraceParent())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return ErrNotFound
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: %s %s%s: %d %s", method, peer, path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fleet: decode %s response: %w", path, err)
	}
	return nil
}

// Ready probes a peer's drain-aware readiness endpoint.
func (c *Client) Ready(ctx context.Context, peer string) error {
	return c.do(ctx, http.MethodGet, peer, "/readyz", nil, nil)
}

// Status fetches a peer's fleet status.
func (c *Client) Status(ctx context.Context, peer string) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodGet, peer, "/v1/fleet", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Join announces self to peer and returns peer's (post-join) roster, so
// a joining daemon can transitively announce itself to the whole fleet.
func (c *Client) Join(ctx context.Context, peer, self string) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodPost, peer, "/v1/fleet/join", JoinRequest{Peer: self}, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Steal asks peer for up to max cells, leased to worker.
func (c *Client) Steal(ctx context.Context, peer, worker string, max int) ([]Lease, error) {
	var resp StealResponse
	if err := c.do(ctx, http.MethodPost, peer, "/v1/fleet/steal", StealRequest{Worker: worker, Max: max}, &resp); err != nil {
		return nil, err
	}
	return resp.Leases, nil
}

// Complete reports an executed cell back to its coordinator peer.
func (c *Client) Complete(ctx context.Context, peer string, req CompleteRequest) error {
	return c.do(ctx, http.MethodPost, peer, "/v1/fleet/complete", req, nil)
}

// Renew extends held leases on the coordinator peer.
func (c *Client) Renew(ctx context.Context, peer string, req RenewRequest) (int, error) {
	var resp RenewResponse
	if err := c.do(ctx, http.MethodPost, peer, "/v1/fleet/renew", req, &resp); err != nil {
		return 0, err
	}
	return resp.Renewed, nil
}

// CacheGet fetches a content-addressed result from its owning peer;
// ErrNotFound when the owner has no result for the hash.
func (c *Client) CacheGet(ctx context.Context, peer, hash string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, peer, "/v1/fleet/cache/"+hash, nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// CachePut replicates a result envelope to the hash's owning peer so
// future lookups anywhere in the fleet resolve with one proxy hop.
func (c *Client) CachePut(ctx context.Context, peer, hash string, env json.RawMessage) error {
	return c.do(ctx, http.MethodPut, peer, "/v1/fleet/cache/"+hash, env, nil)
}

// TraceSpans fetches the spans a peer recorded for one trace ID, for
// stitching a fleet-wide timeline.
func (c *Client) TraceSpans(ctx context.Context, peer, traceID string) ([]obs.SpanRecord, error) {
	var spans []obs.SpanRecord
	if err := c.do(ctx, http.MethodGet, peer, "/v1/fleet/trace/"+traceID, nil, &spans); err != nil {
		return nil, err
	}
	return spans, nil
}

// CaptureProfile asks a peer to capture one profile into its own
// artifact store; the returned metadata carries the peer-local ID to
// fetch it with. CPU captures block for the sampling window, so the
// caller's ctx should allow for it.
func (c *Client) CaptureProfile(ctx context.Context, peer string, req ProfileCaptureRequest) (*prof.Artifact, error) {
	// The endpoint answers with the capture-response envelope; a
	// non-fleet request holds exactly the one local artifact.
	var resp struct {
		Profiles []prof.Artifact `json:"profiles"`
	}
	if err := c.do(ctx, http.MethodPost, peer, "/v1/profiles", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Profiles) == 0 {
		return nil, fmt.Errorf("fleet: peer %s returned no captured profile", peer)
	}
	return &resp.Profiles[0], nil
}

// Profiles lists a peer's held profile artifacts (metadata only).
func (c *Client) Profiles(ctx context.Context, peer string) ([]prof.Artifact, error) {
	var list []prof.Artifact
	if err := c.do(ctx, http.MethodGet, peer, "/v1/profiles", nil, &list); err != nil {
		return nil, err
	}
	return list, nil
}

// MetricsText fetches a peer's raw Prometheus exposition for the
// federation endpoint. The body is capped at 8 MiB — far above any real
// qlecd exposition, low enough to bound a misbehaving peer.
func (c *Client) MetricsText(ctx context.Context, peer string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(peer, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fleet: GET %s/metrics: %d", peer, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}
