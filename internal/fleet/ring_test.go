package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testKeys returns n deterministic sha256-hex keys — the same shape as
// the canonical config hashes the ring distributes in production.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func peerNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingBalance: with 128 virtual nodes per peer, every peer's share
// of a large key set stays within ±35% of the fair share for fleets of
// 3, 5 and 16 peers. (The stddev of a peer's share is ~1/√replicas ≈ 9%
// of fair share; ±35% is ~4σ, far from flaky while still catching any
// real placement bug, which skews shares by integer factors.)
func TestRingBalance(t *testing.T) {
	keys := testKeys(100_000)
	for _, peers := range []int{3, 5, 16} {
		t.Run(fmt.Sprintf("%dpeers", peers), func(t *testing.T) {
			r := NewRing(0)
			for _, p := range peerNames(peers) {
				r.Add(p)
			}
			counts := make(map[string]int)
			for _, k := range keys {
				owner := r.Owner(k)
				if owner == "" {
					t.Fatalf("no owner for %s", k)
				}
				counts[owner]++
			}
			if len(counts) != peers {
				t.Fatalf("only %d of %d peers own keys: %v", len(counts), peers, counts)
			}
			fair := float64(len(keys)) / float64(peers)
			for p, n := range counts {
				if ratio := float64(n) / fair; ratio < 0.65 || ratio > 1.35 {
					t.Errorf("peer %s owns %d keys (%.2f× fair share %v)", p, n, ratio, fair)
				}
			}
		})
	}
}

// TestRingChurn: adding or removing one peer moves strictly less than
// 2/n of the keys (expected movement is 1/(n+1) on join and 1/n on
// leave), and every key that does move on a join moves TO the joining
// peer — consistent hashing's whole point.
func TestRingChurn(t *testing.T) {
	keys := testKeys(50_000)
	for _, peers := range []int{3, 5, 16} {
		t.Run(fmt.Sprintf("join%d", peers), func(t *testing.T) {
			names := peerNames(peers + 1)
			r := NewRing(0)
			for _, p := range names[:peers] {
				r.Add(p)
			}
			before := make(map[string]string, len(keys))
			for _, k := range keys {
				before[k] = r.Owner(k)
			}
			joiner := names[peers]
			r.Add(joiner)
			moved := 0
			for _, k := range keys {
				owner := r.Owner(k)
				if owner == before[k] {
					continue
				}
				moved++
				if owner != joiner {
					t.Fatalf("key %s moved %s → %s, not to the joining peer %s", k, before[k], owner, joiner)
				}
			}
			if limit := 2 * len(keys) / peers; moved >= limit {
				t.Errorf("join moved %d/%d keys, want < %d (2/n churn bound)", moved, len(keys), limit)
			}
		})
		t.Run(fmt.Sprintf("leave%d", peers), func(t *testing.T) {
			names := peerNames(peers)
			r := NewRing(0)
			for _, p := range names {
				r.Add(p)
			}
			before := make(map[string]string, len(keys))
			for _, k := range keys {
				before[k] = r.Owner(k)
			}
			leaver := names[0]
			r.Remove(leaver)
			moved := 0
			for _, k := range keys {
				owner := r.Owner(k)
				if owner != before[k] {
					moved++
					if before[k] != leaver {
						t.Fatalf("key %s moved %s → %s though %s left", k, before[k], owner, leaver)
					}
				}
			}
			if limit := 2 * len(keys) / peers; moved >= limit {
				t.Errorf("leave moved %d/%d keys, want < %d (2/n churn bound)", moved, len(keys), limit)
			}
		})
	}
}

// TestRingSuccessors: the fallback chain starts at the owner, lists
// distinct peers, and never exceeds the member count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(0)
	for _, p := range peerNames(5) {
		r.Add(p)
	}
	for _, k := range testKeys(100) {
		succ := r.Successors(k, 99)
		if len(succ) != 5 {
			t.Fatalf("got %d successors, want 5", len(succ))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("successors[0] = %s, owner = %s", succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, p := range succ {
			if seen[p] {
				t.Fatalf("duplicate successor %s", p)
			}
			seen[p] = true
		}
	}
}

// TestRingOwnerStable: ownership is a pure function of the member set,
// independent of insertion order.
func TestRingOwnerStable(t *testing.T) {
	keys := testKeys(1000)
	a, b := NewRing(0), NewRing(0)
	names := peerNames(4)
	for _, p := range names {
		a.Add(p)
	}
	for i := len(names) - 1; i >= 0; i-- {
		b.Add(names[i])
	}
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner(%s) differs by insertion order: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
	if got := NewRing(0).Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
}
