// Package fleet turns qlecd daemons into a cooperating fleet: a
// consistent-hash ring assigns every content hash one owning peer (the
// cache authority other peers proxy hits from), a membership table
// tracks which peers are ready to take work, and a lease table hands
// sweep cells out to peers under a TTL so a peer dying mid-cell just
// returns its work to the pool. The package is transport-agnostic data
// structures plus a thin HTTP peer client over the wire types in
// wire.go; internal/service mounts the matching handlers and drives
// the scheduling (DESIGN.md §14).
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// DefaultReplicas is the virtual-node count per peer. 128 points per
// peer keeps the expected per-peer load imbalance under ~10% (stddev of
// the largest arc sum shrinks like 1/√replicas) while the whole ring
// for a 16-peer fleet stays at 2048 points — binary searches are a few
// cache lines.
const DefaultReplicas = 128

// Ring is a consistent-hash ring over peer IDs (base URLs). Keys — the
// sha256 canonical-config hashes that already address the result cache
// — map to the first virtual node clockwise; adding or removing one
// peer of n moves only ~1/n of the key space (tested in ring_test.go).
// Safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	peers    map[string]struct{}
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	h    uint64
	peer string
}

// NewRing builds an empty ring; replicas <= 0 uses DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, peers: make(map[string]struct{})}
}

// ringHash positions a byte string on the ring: the first 8 bytes of
// its SHA-256. Config hashes are already hex SHA-256 digests, but
// hashing again costs little and makes arbitrary peer IDs uniform.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a peer (idempotent).
func (r *Ring) Add(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[peer]; ok {
		return
	}
	r.peers[peer] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{h: ringHash(peer + "#" + strconv.Itoa(i)), peer: peer})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
}

// Remove deletes a peer and its virtual nodes (idempotent).
func (r *Ring) Remove(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[peer]; !ok {
		return
	}
	delete(r.peers, peer)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.peer != peer {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Peers returns the member set, sorted.
func (r *Ring) Peers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.peers))
	for p := range r.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of peers.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.peers)
}

// Owner returns the peer owning key — the first virtual node at or
// clockwise after the key's ring position — or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Successors(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Successors returns up to n distinct peers in clockwise preference
// order from key's position: the owner first, then the fallbacks a
// caller walks when the owner is down or draining. Every peer appears
// at most once.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	kh := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= kh })
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.peer]; dup {
			continue
		}
		seen[p.peer] = struct{}{}
		out = append(out, p.peer)
	}
	return out
}
