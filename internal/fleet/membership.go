package fleet

import (
	"context"
	"sort"
	"sync"
	"time"
)

// ProbeFunc checks one peer's readiness (the service layer probes
// GET /readyz); a nil error marks the peer ready.
type ProbeFunc func(ctx context.Context, peer string) error

// PeerState is one peer's membership view, as reported by /v1/fleet.
type PeerState struct {
	ID    string `json:"id"` // advertised base URL
	Self  bool   `json:"self,omitempty"`
	Ready bool   `json:"ready"`
	// Err is the last probe failure; empty while ready.
	Err       string    `json:"err,omitempty"`
	LastProbe time.Time `json:"lastProbe,omitzero"`
}

// Membership tracks the fleet roster and its health over a consistent-
// hash ring. The local daemon is always a ready member; other peers
// start unready until the first successful probe, so work never routes
// to a peer that has not answered /readyz yet. Ownership lookups skip
// unready peers by walking the ring clockwise — a drained or dead owner
// degrades to its successor instead of black-holing its key range.
type Membership struct {
	self     string
	probe    ProbeFunc
	interval time.Duration

	mu    sync.Mutex
	ring  *Ring
	state map[string]*PeerState

	stop   context.CancelFunc
	donech chan struct{}
}

// NewMembership builds a roster containing only self. probe may be nil
// (static all-ready membership — tests); interval <= 0 defaults to 1s.
func NewMembership(self string, probe ProbeFunc, interval time.Duration) *Membership {
	if interval <= 0 {
		interval = time.Second
	}
	m := &Membership{
		self:     self,
		probe:    probe,
		interval: interval,
		ring:     NewRing(0),
		state:    map[string]*PeerState{self: {ID: self, Self: true, Ready: true}},
	}
	m.ring.Add(self)
	return m
}

// Self returns the local peer ID.
func (m *Membership) Self() string { return m.self }

// Add inserts a peer into the roster and ring; reports whether it was
// new. A freshly added peer is unready until probed (or MarkReady),
// unless the membership has no prober, in which case it is trusted
// immediately.
func (m *Membership) Add(peer string) bool {
	if peer == "" || peer == m.self {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.state[peer]; ok {
		return false
	}
	m.state[peer] = &PeerState{ID: peer, Ready: m.probe == nil}
	m.ring.Add(peer)
	return true
}

// Remove drops a peer from roster and ring.
func (m *Membership) Remove(peer string) {
	if peer == m.self {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.state[peer]; !ok {
		return
	}
	delete(m.state, peer)
	m.ring.Remove(peer)
}

// MarkReady records a probe outcome for a known peer.
func (m *Membership) MarkReady(peer string, ready bool, errMsg string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.state[peer]; ok && !st.Self {
		st.Ready = ready
		st.Err = errMsg
		st.LastProbe = time.Now().UTC()
	}
}

// Peers snapshots the roster, self first then sorted by ID.
func (m *Membership) Peers() []PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerState, 0, len(m.state))
	for _, st := range m.state {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ReadyOthers lists ready peers other than self, sorted — the steal and
// proxy targets.
func (m *Membership) ReadyOthers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for id, st := range m.state {
		if !st.Self && st.Ready {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Owner resolves the ready owner of a key: the ring owner if ready,
// else the first ready successor clockwise. Falls back to self when no
// peer is ready (a fleet of one still owns every key).
func (m *Membership) Owner(key string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, peer := range m.ring.Successors(key, m.ring.Len()) {
		if st, ok := m.state[peer]; ok && st.Ready {
			return peer
		}
	}
	return m.self
}

// Start launches the background probe loop (no-op without a prober).
// Stop with Stop; Start is single-use.
func (m *Membership) Start() {
	if m.probe == nil || m.stop != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.stop = cancel
	m.donech = make(chan struct{})
	go func() {
		defer close(m.donech)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			m.probeAll(ctx)
			select {
			case <-t.C:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Stop halts the probe loop and waits for it to exit.
func (m *Membership) Stop() {
	if m.stop == nil {
		return
	}
	m.stop()
	<-m.donech
	m.stop = nil
}

// probeAll probes every non-self peer concurrently, bounded by the
// probe interval so a hung peer cannot stall the loop.
func (m *Membership) probeAll(ctx context.Context) {
	m.mu.Lock()
	var others []string
	for id, st := range m.state {
		if !st.Self {
			others = append(others, id)
		}
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, peer := range others {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.interval)
			defer cancel()
			if err := m.probe(pctx, peer); err != nil {
				m.MarkReady(peer, false, err.Error())
			} else {
				m.MarkReady(peer, true, "")
			}
		}(peer)
	}
	wg.Wait()
}
