package fleet

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Cell is one unit of distributable work: a content hash plus the
// serialized cell request (a service.Request — the fleet layer never
// decodes it, so the package stays free of service imports).
type Cell struct {
	Hash string          `json:"hash"`
	Spec json.RawMessage `json:"spec"`
	// Trace is the scheduling job's W3C traceparent, carried with the
	// cell so whoever executes it — the coordinator or a stealing peer —
	// records its spans into the same distributed trace.
	Trace string `json:"trace,omitempty"`
}

// Lease is one granted cell: execute it and report completion before
// Expires (or renew), or the cell silently returns to the pool and
// someone else runs it. Completion is keyed by content hash, so a
// "late" completion after expiry still counts — results are
// deterministic and content-addressed, re-execution is wasted work,
// never wrong work.
type Lease struct {
	ID      string    `json:"id"`
	Holder  string    `json:"holder"`
	Cell    Cell      `json:"cell"`
	Expires time.Time `json:"expires"`
	// Waited is how long the cell sat in the pending pool before this
	// lease — the queue-wait signal the coordinator feeds its cell-wait
	// histogram (and through it the autoscale advisor).
	Waited time.Duration `json:"waited,omitempty"`
}

// Table is the coordinator-side cell pool: pending cells FIFO, leased
// cells under TTL. All methods are safe for concurrent use.
type Table struct {
	mu      sync.Mutex
	pending []string             // FIFO of hashes
	cells   map[string]Cell      // every live cell (pending or leased)
	leases  map[string]lease     // lease ID → grant
	byHash  map[string]string
	offered map[string]time.Time // when each cell last entered the pending pool
	nextID  int
	expired uint64 // cumulative lease expiries (metrics)
}

type lease struct {
	hash    string
	holder  string
	expires time.Time
}

// NewTable builds an empty pool.
func NewTable() *Table {
	return &Table{
		cells:   make(map[string]Cell),
		leases:  make(map[string]lease),
		byHash:  make(map[string]string),
		offered: make(map[string]time.Time),
	}
}

// Offer adds a cell to the pending pool; reports false when the hash is
// already pooled (pending or leased) — the pool dedupes by content.
func (t *Table) Offer(c Cell) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.cells[c.Hash]; ok {
		return false
	}
	t.cells[c.Hash] = c
	t.pending = append(t.pending, c.Hash)
	t.offered[c.Hash] = time.Now()
	return true
}

// Acquire leases up to max pending cells to holder until now+ttl.
func (t *Table) Acquire(holder string, max int, ttl time.Duration, now time.Time) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Lease
	for len(out) < max && len(t.pending) > 0 {
		hash := t.pending[0]
		t.pending = t.pending[1:]
		cell, ok := t.cells[hash]
		if !ok {
			continue // completed or withdrawn while pending
		}
		t.nextID++
		var waited time.Duration
		if at, ok := t.offered[hash]; ok {
			if w := now.Sub(at); w > 0 {
				waited = w
			}
		}
		l := Lease{
			ID:      fmt.Sprintf("l%08d", t.nextID),
			Holder:  holder,
			Cell:    cell,
			Expires: now.Add(ttl),
			Waited:  waited,
		}
		t.leases[l.ID] = lease{hash: hash, holder: holder, expires: l.Expires}
		t.byHash[hash] = l.ID
		out = append(out, l)
	}
	return out
}

// Renew extends the named leases to now+ttl; returns how many were
// still live (an expired-and-re-pooled lease cannot be renewed).
func (t *Table) Renew(ids []string, ttl time.Duration, now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, id := range ids {
		if l, ok := t.leases[id]; ok {
			l.expires = now.Add(ttl)
			t.leases[id] = l
			n++
		}
	}
	return n
}

// Complete removes a finished cell by hash, whatever its state —
// leased, re-pooled after expiry, or still pending (a cache hit arrived
// from elsewhere). Reports false when the hash was not pooled (already
// completed: duplicate completions are idempotent).
func (t *Table) Complete(hash string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.cells[hash]; !ok {
		return false
	}
	delete(t.cells, hash)
	delete(t.offered, hash)
	if id, ok := t.byHash[hash]; ok {
		delete(t.leases, id)
		delete(t.byHash, hash)
	}
	// A pending entry for the hash, if any, is skipped lazily by Acquire.
	return true
}

// Withdraw removes a cell that no longer has any waiter (its jobs were
// all cancelled) so nobody wastes work on it. Leased cells are left to
// finish — their result is still cacheable.
func (t *Table) Withdraw(hash string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, leased := t.byHash[hash]; leased {
		return false
	}
	if _, ok := t.cells[hash]; !ok {
		return false
	}
	delete(t.cells, hash)
	delete(t.offered, hash)
	return true
}

// ExpireDue returns every lease past due to the pending pool and
// reports the re-pooled cells — the "peer died mid-cell" path.
func (t *Table) ExpireDue(now time.Time) []Cell {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Cell
	for id, l := range t.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(t.leases, id)
		delete(t.byHash, l.hash)
		if cell, ok := t.cells[l.hash]; ok {
			t.pending = append(t.pending, l.hash)
			// Restart the wait clock: the histogram measures current
			// starvation, not cumulative time across expired leases.
			t.offered[l.hash] = now
			out = append(out, cell)
			t.expired++
		}
	}
	return out
}

// Stats reports pool depth: cells awaiting a lease, cells out on lease,
// and cumulative lease expiries.
func (t *Table) Stats() (pending, leased int, expired uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Pending entries may be stale (completed while queued); count live
	// cells not currently leased instead of the FIFO length.
	return len(t.cells) - len(t.byHash), len(t.byHash), t.expired
}
