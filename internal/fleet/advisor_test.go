package fleet

import (
	"strings"
	"testing"
	"time"
)

// advisorTestConfig keeps the windows small and round so sample times
// are easy to reason about: fast 10s, slow 30s, hysteresis 20s.
func advisorTestConfig() AdvisorConfig {
	return AdvisorConfig{
		SLO:        100 * time.Millisecond,
		FastWindow: 10 * time.Second,
		SlowWindow: 30 * time.Second,
		FastBurn:   0.5,
		SlowBurn:   0.25,
		Hysteresis: 20 * time.Second,
		MaxStep:    4,
	}
}

func TestAdvisorDisabledWithoutSLO(t *testing.T) {
	a := NewAdvisor(AdvisorConfig{})
	if a.Enabled() {
		t.Fatal("zero-config advisor reports enabled")
	}
	adv := a.Observe(Sample{At: time.Unix(1000, 0), WaitCount: 10, WaitOverSLO: 10})
	if adv.Delta != 0 || adv.Reason != "" {
		t.Fatalf("disabled advisor advised %+v, want zero", adv)
	}
}

// TestAdvisorScaleUpImmediate: both burn windows over threshold flips
// the recommendation positive on the very sample that crosses — no
// hysteresis on the way up.
func TestAdvisorScaleUpImmediate(t *testing.T) {
	a := NewAdvisor(advisorTestConfig())
	t0 := time.Unix(1000, 0)

	// 40s of clean baseline so both windows have history.
	for i := 0; i <= 40; i += 5 {
		adv := a.Observe(Sample{At: t0.Add(time.Duration(i) * time.Second), WaitCount: uint64(10 + i), Workers: 2})
		if adv.Delta != 0 {
			t.Fatalf("clean sample at +%ds advised delta %d, want 0", i, adv.Delta)
		}
	}
	// Then every new wait is over the SLO: 60 new observations, all bad,
	// so fast burn = slow burn = 1.0 over their windows.
	adv := a.Observe(Sample{
		At:          t0.Add(45 * time.Second),
		WaitCount:   110,
		WaitOverSLO: 60,
		Backlog:     7,
		Workers:     2,
		ReadyPeers:  1,
	})
	if adv.Delta <= 0 {
		t.Fatalf("over-SLO sample advised delta %d, want positive (reason %q)", adv.Delta, adv.Reason)
	}
	// ceil(7/2) = 4, exactly MaxStep.
	if adv.Delta != 4 {
		t.Errorf("delta = %d, want ceil(backlog/workers) = 4", adv.Delta)
	}
	if !strings.Contains(adv.Reason, "add") {
		t.Errorf("reason %q does not explain the scale-up", adv.Reason)
	}
	if adv.FastBurn < 0.5 || adv.SlowBurn < 0.25 {
		t.Errorf("burn rates %.2f/%.2f, want both over their thresholds", adv.FastBurn, adv.SlowBurn)
	}
}

// TestAdvisorMaxStepCapsDelta: a huge backlog cannot recommend more
// than MaxStep peers at once.
func TestAdvisorMaxStepCapsDelta(t *testing.T) {
	cfg := advisorTestConfig()
	cfg.MaxStep = 2
	a := NewAdvisor(cfg)
	t0 := time.Unix(1000, 0)
	a.Observe(Sample{At: t0, WaitCount: 10, Workers: 1})
	adv := a.Observe(Sample{
		At: t0.Add(31 * time.Second), WaitCount: 100, WaitOverSLO: 90,
		Backlog: 500, Workers: 1,
	})
	if adv.Delta != 2 {
		t.Fatalf("delta = %d, want capped at MaxStep 2", adv.Delta)
	}
}

// TestAdvisorFastSpikeAloneDoesNotScale: a burst that only trips the
// fast window (slow window still mostly clean) stays at zero — the
// two-window AND is the flap guard.
func TestAdvisorFastSpikeAloneDoesNotScale(t *testing.T) {
	a := NewAdvisor(advisorTestConfig())
	t0 := time.Unix(1000, 0)
	// 30s of heavy clean traffic: 1000 good observations.
	for i := 0; i <= 30; i += 5 {
		a.Observe(Sample{At: t0.Add(time.Duration(i) * time.Second), WaitCount: uint64(200 * (i/5 + 1)), Workers: 2})
	}
	// A spike of 200 bad waits on top: fast window holds 200 good + 200
	// bad (burn 0.5, at threshold), slow window 1000 good + 200 bad
	// (burn 0.17, under its 0.25 threshold).
	adv := a.Observe(Sample{
		At: t0.Add(35 * time.Second), WaitCount: 1600, WaitOverSLO: 200,
		Backlog: 4, Workers: 2,
	})
	if adv.Delta != 0 {
		t.Fatalf("fast-only spike advised delta %d, want 0 (burn %.2f/%.2f)", adv.Delta, adv.FastBurn, adv.SlowBurn)
	}
}

// TestAdvisorScaleDownNeedsHysteresis: after a scale-up, recovery does
// not drop the recommendation until the lower target has held for the
// hysteresis window; and the drop lands at the pending target.
func TestAdvisorScaleDownNeedsHysteresis(t *testing.T) {
	a := NewAdvisor(advisorTestConfig())
	t0 := time.Unix(1000, 0)
	a.Observe(Sample{At: t0, WaitCount: 10, Workers: 2})
	adv := a.Observe(Sample{
		At: t0.Add(31 * time.Second), WaitCount: 70, WaitOverSLO: 40,
		Backlog: 2, Workers: 2,
	})
	if adv.Delta != 1 {
		t.Fatalf("setup: delta = %d, want 1", adv.Delta)
	}

	// Recovery: no new over-SLO waits from here on. The bad burst ages
	// out of the fast window by recov+10, which is when the raw target
	// first returns to 0 and the hysteresis clock starts; the published
	// delta must hold for 20s beyond that, i.e. until recov+30.
	recov := t0.Add(31 * time.Second)
	for i := 5; i <= 25; i += 5 {
		adv = a.Observe(Sample{
			At: recov.Add(time.Duration(i) * time.Second), WaitCount: 70 + uint64(i), WaitOverSLO: 40,
			Workers: 2,
		})
		if adv.Delta != 1 {
			t.Fatalf("recommendation dropped to %d only %ds into recovery, want 1 until hysteresis elapses", adv.Delta, i)
		}
	}
	adv = a.Observe(Sample{At: recov.Add(30 * time.Second), WaitCount: 100, WaitOverSLO: 40, Workers: 2})
	if adv.Delta != 0 {
		t.Fatalf("delta = %d after hysteresis elapsed, want 0 (reason %q)", adv.Delta, adv.Reason)
	}
}

// TestAdvisorScaleDownOnStarvation: a clean slow window with starving
// executors and spare peers recommends removing one — after holding
// through hysteresis.
func TestAdvisorScaleDownOnStarvation(t *testing.T) {
	a := NewAdvisor(advisorTestConfig())
	t0 := time.Unix(1000, 0)
	// 60s of idle fleet: no waits at all, starvation counter climbing.
	var adv Advice
	for i := 0; i <= 60; i += 5 {
		adv = a.Observe(Sample{
			At:         t0.Add(time.Duration(i) * time.Second),
			WaitCount:  5, // stale history, nothing new
			Starved:    uint64(100 + i*10),
			ReadyPeers: 3,
			Workers:    2,
		})
	}
	if adv.Delta != -1 {
		t.Fatalf("idle fleet advised delta %d, want -1 (reason %q)", adv.Delta, adv.Reason)
	}
	if !strings.Contains(adv.Reason, "remove") {
		t.Errorf("reason %q does not explain the scale-down", adv.Reason)
	}
}

// TestAdvisorNoScaleDownWithoutSparePeer: starving executors on the
// last daemon standing never recommend going below one.
func TestAdvisorNoScaleDownWithoutSparePeer(t *testing.T) {
	a := NewAdvisor(advisorTestConfig())
	t0 := time.Unix(1000, 0)
	var adv Advice
	for i := 0; i <= 60; i += 5 {
		adv = a.Observe(Sample{
			At:         t0.Add(time.Duration(i) * time.Second),
			WaitCount:  5,
			Starved:    uint64(100 + i*10),
			ReadyPeers: 1,
			Workers:    2,
		})
	}
	if adv.Delta != 0 {
		t.Fatalf("single-peer fleet advised delta %d, want 0", adv.Delta)
	}
}

// TestAdvisorCurrentMatchesObserve: Current returns what the last
// Observe published, including for a nil advisor.
func TestAdvisorCurrentMatchesObserve(t *testing.T) {
	var nilAdv *Advisor
	if nilAdv.Current().Delta != 0 || nilAdv.Enabled() {
		t.Fatal("nil advisor is not inert")
	}
	a := NewAdvisor(advisorTestConfig())
	t0 := time.Unix(1000, 0)
	a.Observe(Sample{At: t0, WaitCount: 1, Workers: 1})
	got := a.Observe(Sample{At: t0.Add(31 * time.Second), WaitCount: 50, WaitOverSLO: 40, Backlog: 1, Workers: 1})
	if cur := a.Current(); cur != got {
		t.Fatalf("Current() = %+v, Observe returned %+v", cur, got)
	}
	if a.SLO() != 100*time.Millisecond {
		t.Fatalf("SLO() = %v, want 100ms", a.SLO())
	}
}
