package mobility

import (
	"testing"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

func newModel(t *testing.T, n int, speedMin, speedMax, pause float64, seed uint64) (*RandomWaypoint, []geom.Vec3) {
	t.Helper()
	box := geom.Cube(200)
	r := rng.New(seed)
	pos := box.SampleUniformN(r, n)
	m, err := NewRandomWaypoint(box, n, speedMin, speedMax, pause, r)
	if err != nil {
		t.Fatal(err)
	}
	return m, pos
}

func TestValidation(t *testing.T) {
	box := geom.Cube(100)
	r := rng.New(1)
	if _, err := NewRandomWaypoint(box, 0, 1, 2, 0, r); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewRandomWaypoint(box, 5, -1, 2, 0, r); err == nil {
		t.Fatal("negative speed accepted")
	}
	if _, err := NewRandomWaypoint(box, 5, 3, 2, 0, r); err == nil {
		t.Fatal("inverted speed range accepted")
	}
	if _, err := NewRandomWaypoint(box, 5, 1, 2, -1, r); err == nil {
		t.Fatal("negative pause accepted")
	}
	bad := geom.AABB{Min: geom.Vec3{X: 1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}}
	if _, err := NewRandomWaypoint(bad, 5, 1, 2, 0, r); err == nil {
		t.Fatal("degenerate box accepted")
	}
}

func TestMovementBoundedBySpeed(t *testing.T) {
	m, pos := newModel(t, 50, 1, 3, 0, 2)
	before := append([]geom.Vec3(nil), pos...)
	const dt = 10.0
	m.Advance(pos, dt)
	for i := range pos {
		if d := pos[i].Dist(before[i]); d > 3*dt+1e-9 {
			t.Fatalf("node %d moved %v m in %v s at max speed 3", i, d, dt)
		}
	}
}

func TestStaysInBox(t *testing.T) {
	m, pos := newModel(t, 50, 2, 8, 1, 3)
	box := geom.Cube(200)
	for step := 0; step < 100; step++ {
		m.Advance(pos, 20)
		for i, p := range pos {
			if !box.Contains(p) && box.Clamp(p).Dist(p) > 1e-9 {
				t.Fatalf("node %d escaped the box: %v", i, p)
			}
		}
	}
}

func TestZeroSpeedIsStatic(t *testing.T) {
	m, pos := newModel(t, 10, 0, 0, 0, 4)
	before := append([]geom.Vec3(nil), pos...)
	m.Advance(pos, 100)
	for i := range pos {
		if pos[i] != before[i] {
			t.Fatalf("static node %d moved", i)
		}
	}
}

func TestZeroDtIsNoop(t *testing.T) {
	m, pos := newModel(t, 10, 1, 2, 0, 5)
	before := append([]geom.Vec3(nil), pos...)
	m.Advance(pos, 0)
	m.Advance(pos, -5)
	for i := range pos {
		if pos[i] != before[i] {
			t.Fatal("zero/negative dt moved nodes")
		}
	}
}

func TestDeterministic(t *testing.T) {
	m1, pos1 := newModel(t, 20, 1, 4, 2, 6)
	m2, pos2 := newModel(t, 20, 1, 4, 2, 6)
	for step := 0; step < 20; step++ {
		m1.Advance(pos1, 20)
		m2.Advance(pos2, 20)
	}
	for i := range pos1 {
		if pos1[i] != pos2[i] {
			t.Fatalf("node %d diverged across equal seeds", i)
		}
	}
}

func TestNodesActuallyMoveOverTime(t *testing.T) {
	m, pos := newModel(t, 30, 2, 5, 0, 7)
	before := append([]geom.Vec3(nil), pos...)
	for step := 0; step < 10; step++ {
		m.Advance(pos, 20)
	}
	moved := 0
	for i := range pos {
		if pos[i].Dist(before[i]) > 10 {
			moved++
		}
	}
	if moved < 25 {
		t.Fatalf("only %d/30 nodes moved meaningfully", moved)
	}
}

func TestPauseHoldsNodesAtWaypoints(t *testing.T) {
	// Very fast nodes with a pause much longer than a step: after the
	// first step every node sits at a waypoint mid-pause, so the next
	// step must not move anyone.
	m, pos := newModel(t, 20, 1000, 1000, 1e6, 8)
	m.Advance(pos, 10)
	at := append([]geom.Vec3(nil), pos...)
	m.Advance(pos, 10)
	for i := range pos {
		if pos[i] != at[i] {
			t.Fatalf("node %d moved during its pause", i)
		}
	}
}

func TestAdvancePanicsOnSizeMismatch(t *testing.T) {
	m, _ := newModel(t, 10, 1, 2, 0, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	m.Advance(make([]geom.Vec3, 3), 1)
}
