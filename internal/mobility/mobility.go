// Package mobility implements node movement models for the simulator.
//
// The paper motivates per-round cluster-head reselection with mobility:
// "As a result of the mobility of wireless sensor networks, DEEC
// algorithm is conducted through successive rounds to dynamically select
// nodes ... to serve as cluster heads" (§3.1). The random-waypoint model
// here is the standard way to exercise that: each node picks a uniform
// target in the deployment box, travels toward it at a uniform speed,
// pauses, and repeats. The engine advances positions between rounds, so
// every protocol faces the same drifting topology.
package mobility

import (
	"fmt"

	"qlec/internal/geom"
	"qlec/internal/rng"
)

// RandomWaypoint is the classic mobility model.
type RandomWaypoint struct {
	box                geom.AABB
	speedMin, speedMax float64
	pause              float64
	rnd                *rng.Stream
	states             []wpState
}

type wpState struct {
	target   geom.Vec3
	speed    float64
	pauseRem float64
}

// NewRandomWaypoint builds a model for n nodes in the box. Speeds are
// drawn uniformly from [speedMin, speedMax] m/s per leg; pause is the
// dwell time at each waypoint in seconds.
func NewRandomWaypoint(box geom.AABB, n int, speedMin, speedMax, pause float64, r *rng.Stream) (*RandomWaypoint, error) {
	if err := box.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("mobility: node count must be positive, got %d", n)
	}
	if !(speedMin >= 0) || !(speedMax >= speedMin) {
		return nil, fmt.Errorf("mobility: invalid speed range [%v, %v]", speedMin, speedMax)
	}
	if pause < 0 {
		return nil, fmt.Errorf("mobility: negative pause %v", pause)
	}
	m := &RandomWaypoint{
		box: box, speedMin: speedMin, speedMax: speedMax, pause: pause,
		rnd: r, states: make([]wpState, n),
	}
	for i := range m.states {
		m.states[i] = wpState{
			target: box.SampleUniform(r),
			speed:  m.drawSpeed(),
		}
	}
	return m, nil
}

// drawSpeed picks a leg speed; a degenerate [v, v] range returns v
// exactly (including the fully static v = 0 case).
func (m *RandomWaypoint) drawSpeed() float64 {
	if m.speedMax == m.speedMin {
		return m.speedMin
	}
	return m.rnd.Range(m.speedMin, m.speedMax)
}

// Advance moves each position dt seconds along its leg, handling
// waypoint arrivals and pauses. Positions are mutated in place and stay
// inside the box. It panics if len(positions) differs from the model's
// node count (a wiring bug, not a runtime condition).
func (m *RandomWaypoint) Advance(positions []geom.Vec3, dt float64) {
	if len(positions) != len(m.states) {
		panic(fmt.Sprintf("mobility: %d positions for %d states", len(positions), len(m.states)))
	}
	if dt <= 0 {
		return
	}
	for i := range positions {
		m.advanceOne(&positions[i], &m.states[i], dt)
	}
}

func (m *RandomWaypoint) advanceOne(pos *geom.Vec3, st *wpState, dt float64) {
	remaining := dt
	for remaining > 0 {
		// Spend pause time first.
		if st.pauseRem > 0 {
			if st.pauseRem >= remaining {
				st.pauseRem -= remaining
				return
			}
			remaining -= st.pauseRem
			st.pauseRem = 0
		}
		if st.speed <= 0 {
			return // static node
		}
		toGo := st.target.Sub(*pos)
		dist := toGo.Norm()
		travel := st.speed * remaining
		if travel < dist {
			*pos = pos.Add(toGo.Scale(travel / dist))
			return
		}
		// Arrive at the waypoint, pause, pick the next leg.
		*pos = st.target
		if st.speed > 0 {
			remaining -= dist / st.speed
		} else {
			remaining = 0
		}
		st.pauseRem = m.pause
		st.target = m.box.SampleUniform(m.rnd)
		st.speed = m.drawSpeed()
	}
}
