// Package cluster defines the contract between the simulation engine and
// the clustering/routing protocols under test (QLEC and the baselines),
// plus the assignment utilities every protocol shares.
//
// The paper evaluates three protocols under one common round structure
// (§5.1): per round, a protocol selects cluster heads, non-head nodes
// forward sensing packets to a head of the protocol's choosing, heads
// fuse and deliver to the base station. The Protocol interface captures
// exactly the decision points where the protocols differ; everything else
// (radio costs, queueing, packet loss, metrics) lives in the engine and
// is identical across protocols, so measured differences are attributable
// to the algorithms alone.
package cluster

import (
	"fmt"
	"sort"

	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/network"
)

// RelayMode describes how a protocol's cluster heads move fused data to
// the base station.
type RelayMode int

const (
	// HoldAndBurst: heads accumulate member packets during the round and
	// send one aggregated, compressed burst directly to the BS at the end
	// of the round (QLEC, k-means, LEACH, plain DEEC).
	HoldAndBurst RelayMode = iota
	// ForwardPerPacket: heads forward each fused packet onward during the
	// round, hop by hop through other heads toward the BS (the FCM-based
	// baseline's hierarchical multi-hop routing).
	ForwardPerPacket
)

// String implements fmt.Stringer.
func (m RelayMode) String() string {
	switch m {
	case HoldAndBurst:
		return "hold-and-burst"
	case ForwardPerPacket:
		return "forward-per-packet"
	default:
		return fmt.Sprintf("RelayMode(%d)", int(m))
	}
}

// Protocol is a clustering + routing algorithm under test.
//
// Engine call order per round r:
//
//	heads := p.StartRound(r)
//	... many p.NextHop / p.OnOutcome during the round ...
//	p.EndRound(r)
//
// Implementations may assume calls are single-goroutine.
type Protocol interface {
	// Name identifies the protocol in result tables.
	Name() string

	// StartRound selects the cluster heads for round r and returns their
	// node ids. The engine treats every other alive node as a member.
	// An empty head set is legal (members then route straight to the BS).
	StartRound(round int) []int

	// NextHop returns where the given node forwards its current packet:
	// a node id, or network.BSID for the base station. For member nodes
	// this selects a cluster head; for head nodes (under
	// ForwardPerPacket) it selects the next relay toward the BS.
	NextHop(node int) int

	// OnOutcome reports the result of a transmission attempt from node
	// to target (which may be network.BSID): success is true when the
	// packet was accepted (link worked and queue had space). Protocols
	// use it to learn link quality; baselines may ignore it.
	OnOutcome(node, target int, success bool)

	// EndRound runs after the end-of-round delivery, before the next
	// StartRound. QLEC updates its cluster-head V values here
	// (Algorithm 1, line 15).
	EndRound(round int)

	// RelayMode declares how heads move fused data to the BS.
	RelayMode() RelayMode
}

// StaticRouter is an optional Protocol extension for protocols whose
// routing is a fixed member→target map for the whole round — no
// rerouting on retry, no learning from outcomes. The simulation engine
// uses it to run independent clusters on parallel goroutines between
// CH-selection barriers (see sim.Config.ClusterWorkers): with a static
// map the engine can partition nodes by target before the round's event
// loop starts.
//
// Contract: the returned slice has one entry per node — the value
// NextHop would return for that node at any point during the current
// round (a head node id or network.BSID) — and is valid until the next
// StartRound. Implementations must tolerate OnOutcome not being called
// for transmissions simulated on parallel lanes; a protocol that learns
// from outcomes must not implement StaticRouter.
type StaticRouter interface {
	StaticHops() []int
}

// GeometryInvalidator is an optional Protocol extension for protocols
// that memoize position-derived quantities (distances, path-loss costs)
// across rounds. The simulation engine calls InvalidateGeometry after
// every mobility step, immediately after node positions change; a
// protocol that never receives the call may assume positions are frozen
// for the network's lifetime.
type GeometryInvalidator interface {
	InvalidateGeometry()
}

// Assignment maps every node to its cluster: Head[i] is the head node id
// serving node i (a head maps to itself), or network.BSID when no head
// is reachable.
type Assignment struct {
	Head []int
}

// AssignNearest builds the classic nearest-head assignment over the given
// positions: every node joins the cluster of the closest head ("nodes
// that are not selected as cluster heads dynamically choose the nearest
// cluster head", §3.1). Heads map to themselves. With no heads, every
// node maps to network.BSID.
func AssignNearest(w *network.Network, heads []int) Assignment {
	a := Assignment{Head: make([]int, w.N())}
	if len(heads) == 0 {
		for i := range a.Head {
			a.Head[i] = network.BSID
		}
		return a
	}
	pts := make([]geom.Vec3, len(heads))
	for i, h := range heads {
		pts[i] = w.Nodes[h].Pos
	}
	grid := geom.NewGrid(w.Box, pts, heads, 0)
	isHead := make(map[int]bool, len(heads))
	for _, h := range heads {
		isHead[h] = true
	}
	for i, n := range w.Nodes {
		if isHead[i] {
			a.Head[i] = i
			continue
		}
		id, _, ok := grid.Nearest(n.Pos)
		if !ok {
			a.Head[i] = network.BSID
			continue
		}
		a.Head[i] = id
	}
	return a
}

// Members returns the node ids assigned to the given head, ascending,
// excluding the head itself.
func (a Assignment) Members(head int) []int {
	var out []int
	for i, h := range a.Head {
		if h == head && i != head {
			out = append(out, i)
		}
	}
	return out
}

// Sizes returns cluster sizes keyed by head id (head included).
func (a Assignment) Sizes() map[int]int {
	sizes := map[int]int{}
	for _, h := range a.Head {
		if h != network.BSID {
			sizes[h]++
		}
	}
	return sizes
}

// MeanSqDistToHead returns the average squared member→head distance — the
// empirical counterpart of Lemma 1's E[d²_toCH], used by tests and the
// Theorem 1 bench. Heads contribute zero. Nodes assigned to the BS are
// skipped.
func MeanSqDistToHead(w *network.Network, a Assignment) float64 {
	if len(a.Head) != w.N() {
		panic("cluster: assignment size mismatch")
	}
	sum, n := 0.0, 0
	for i, h := range a.Head {
		if h == network.BSID {
			continue
		}
		n++
		if h == i {
			continue
		}
		sum += w.Nodes[i].Pos.DistSq(w.Nodes[h].Pos)
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ValidateHeads checks a head set: ids in range, alive at the given death
// line, and duplicate-free. Protocol tests call it on every round's
// output; the engine trusts protocols on release paths.
func ValidateHeads(w *network.Network, heads []int, deathLine energy.Joules) error {
	seen := map[int]bool{}
	for _, h := range heads {
		if h < 0 || h >= w.N() {
			return fmt.Errorf("cluster: head id %d out of range [0,%d)", h, w.N())
		}
		if seen[h] {
			return fmt.Errorf("cluster: duplicate head %d", h)
		}
		if !w.Nodes[h].Alive(deathLine) {
			return fmt.Errorf("cluster: head %d is below the death line", h)
		}
		seen[h] = true
	}
	return nil
}

// SortedCopy returns a sorted copy of ids — protocols return heads in
// deterministic ascending order so runs are reproducible.
func SortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}
