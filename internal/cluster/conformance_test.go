package cluster

import (
	"strings"
	"testing"

	"qlec/internal/network"
	"qlec/internal/rng"
)

// brokenProtocol misbehaves in a configurable way so the conformance kit
// itself can be tested.
type brokenProtocol struct {
	w    *network.Network
	mode string
}

func (p *brokenProtocol) Name() string { return "broken-" + p.mode }

func (p *brokenProtocol) StartRound(round int) []int {
	switch p.mode {
	case "duplicate-heads":
		return []int{1, 1}
	case "dead-head":
		return []int{0} // node 0 is drained by the test
	default:
		return []int{1, 2}
	}
}

func (p *brokenProtocol) NextHop(node int) int {
	switch p.mode {
	case "self-route":
		return node
	case "non-head":
		if node != 1 && node != 2 {
			return 5 // not a head
		}
		return network.BSID
	case "cycle":
		if node == 1 {
			return 2
		}
		if node == 2 {
			return 1
		}
		return 1
	default:
		if node == 1 || node == 2 {
			return network.BSID
		}
		return 1
	}
}

func (p *brokenProtocol) OnOutcome(node, target int, ok bool) {}
func (p *brokenProtocol) EndRound(round int)                  {}
func (p *brokenProtocol) RelayMode() RelayMode {
	if p.mode == "cycle" {
		return ForwardPerPacket
	}
	return HoldAndBurst
}

func conformanceNet(t *testing.T) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: 20, Side: 100, InitialEnergy: 5}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCheckConformancePassesGoodProtocol(t *testing.T) {
	w := conformanceNet(t)
	report := CheckConformance(w, &brokenProtocol{w: w, mode: "good"}, 5, 0)
	if !report.Ok() {
		t.Fatalf("well-behaved protocol flagged: %v", report.Violations)
	}
	if report.Rounds != 5 || report.Protocol != "broken-good" {
		t.Fatalf("report metadata: %+v", report)
	}
}

func TestCheckConformanceCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"duplicate-heads": "duplicate",
		"self-route":      "itself",
		"non-head":        "non-head",
		"cycle":           "cycle",
	}
	for mode, wantSubstr := range cases {
		w := conformanceNet(t)
		report := CheckConformance(w, &brokenProtocol{w: w, mode: mode}, 3, 0)
		if report.Ok() {
			t.Fatalf("%s: no violations found", mode)
		}
		found := false
		for _, v := range report.Violations {
			if strings.Contains(v, wantSubstr) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: violations %v lack %q", mode, report.Violations, wantSubstr)
		}
	}
}

func TestCheckConformanceCatchesDeadHead(t *testing.T) {
	w := conformanceNet(t)
	w.Nodes[0].Battery.Draw(5)
	report := CheckConformance(w, &brokenProtocol{w: w, mode: "dead-head"}, 1, 0)
	if report.Ok() {
		t.Fatal("dead head not flagged")
	}
}
