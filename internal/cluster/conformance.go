package cluster

import (
	"fmt"

	"qlec/internal/energy"
	"qlec/internal/network"
)

// ConformanceReport lists contract violations found by CheckConformance.
// An empty Violations slice means the protocol honours the Protocol
// contract over the exercised rounds.
type ConformanceReport struct {
	Protocol   string
	Rounds     int
	Violations []string
}

// Ok reports whether no violations were found.
func (r *ConformanceReport) Ok() bool { return len(r.Violations) == 0 }

// CheckConformance drives a protocol through the given number of rounds
// against the network and checks the Protocol contract:
//
//   - StartRound returns in-range, duplicate-free, alive head ids;
//   - NextHop returns a head id, network.BSID, or (for heads under
//     ForwardPerPacket) another head making progress toward the BS
//     without cycles;
//   - NextHop never routes a member to a non-head node;
//   - EndRound does not panic.
//
// It feeds synthetic all-success outcomes through OnOutcome so learning
// protocols advance. The kit powers the cross-protocol conformance test
// and is exported for downstream Protocol implementations to reuse.
func CheckConformance(w *network.Network, p Protocol, rounds int, deathLine energy.Joules) *ConformanceReport {
	report := &ConformanceReport{Protocol: p.Name(), Rounds: rounds}
	addf := func(format string, args ...any) {
		report.Violations = append(report.Violations, fmt.Sprintf(format, args...))
	}
	for r := 0; r < rounds; r++ {
		heads := p.StartRound(r)
		if err := ValidateHeads(w, heads, deathLine); err != nil {
			addf("round %d: %v", r, err)
			p.EndRound(r)
			continue
		}
		isHead := make(map[int]bool, len(heads))
		for _, h := range heads {
			isHead[h] = true
		}
		for id := 0; id < w.N(); id++ {
			if !w.Nodes[id].Alive(deathLine) {
				continue
			}
			hop := p.NextHop(id)
			switch {
			case hop == network.BSID:
				// Always legal.
			case hop == id:
				addf("round %d: node %d routes to itself", r, id)
			case hop < 0 || hop >= w.N():
				addf("round %d: node %d routes to out-of-range %d", r, id, hop)
			case !isHead[hop]:
				addf("round %d: node %d routes to non-head %d", r, id, hop)
			default:
				p.OnOutcome(id, hop, true)
			}
		}
		// Relay chains must reach the BS without cycles.
		if p.RelayMode() == ForwardPerPacket {
			for _, h := range heads {
				seen := map[int]bool{h: true}
				cur := h
				for hop := 0; hop < w.N()+1; hop++ {
					next := p.NextHop(cur)
					if next == network.BSID {
						cur = network.BSID
						break
					}
					if !isHead[next] {
						addf("round %d: relay %d forwards to non-head %d", r, cur, next)
						break
					}
					if seen[next] {
						addf("round %d: relay cycle through %d", r, next)
						break
					}
					seen[next] = true
					cur = next
				}
				if cur != network.BSID && report.Ok() {
					addf("round %d: head %d's relay chain never reaches the BS", r, h)
				}
			}
		}
		p.EndRound(r)
	}
	return report
}
