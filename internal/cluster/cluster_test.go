package cluster

import (
	"math"
	"testing"

	"qlec/internal/energy"
	"qlec/internal/geom"
	"qlec/internal/network"
	"qlec/internal/rng"
)

func testNet(t *testing.T, n int, seed uint64) *network.Network {
	t.Helper()
	w, err := network.Deploy(network.Deployment{N: n, Side: 200, InitialEnergy: 5}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAssignNearest(t *testing.T) {
	w := testNet(t, 100, 1)
	heads := []int{3, 40, 77}
	a := AssignNearest(w, heads)
	if len(a.Head) != 100 {
		t.Fatalf("assignment length %d", len(a.Head))
	}
	headSet := map[int]bool{3: true, 40: true, 77: true}
	for i, h := range a.Head {
		if headSet[i] {
			if h != i {
				t.Fatalf("head %d assigned to %d, want itself", i, h)
			}
			continue
		}
		if !headSet[h] {
			t.Fatalf("node %d assigned to non-head %d", i, h)
		}
		// Verify nearest: no other head is strictly closer.
		d := w.Nodes[i].Pos.Dist(w.Nodes[h].Pos)
		for hh := range headSet {
			if w.Nodes[i].Pos.Dist(w.Nodes[hh].Pos) < d-1e-9 {
				t.Fatalf("node %d assigned to %d but %d is closer", i, h, hh)
			}
		}
	}
}

func TestAssignNearestNoHeads(t *testing.T) {
	w := testNet(t, 10, 2)
	a := AssignNearest(w, nil)
	for i, h := range a.Head {
		if h != network.BSID {
			t.Fatalf("node %d assigned to %d with no heads", i, h)
		}
	}
}

func TestMembersAndSizes(t *testing.T) {
	w := testNet(t, 50, 3)
	heads := []int{0, 25}
	a := AssignNearest(w, heads)
	sizes := a.Sizes()
	total := 0
	for _, h := range heads {
		members := a.Members(h)
		for _, m := range members {
			if m == h {
				t.Fatal("head listed among its members")
			}
			if a.Head[m] != h {
				t.Fatal("Members returned node from another cluster")
			}
		}
		if sizes[h] != len(members)+1 {
			t.Fatalf("size of %d = %d, members = %d", h, sizes[h], len(members))
		}
		total += sizes[h]
	}
	if total != 50 {
		t.Fatalf("cluster sizes sum to %d, want 50", total)
	}
}

func TestMeanSqDistToHeadShrinksWithMoreHeads(t *testing.T) {
	w := testNet(t, 400, 4)
	few := AssignNearest(w, []int{0, 1})
	many := AssignNearest(w, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	if MeanSqDistToHead(w, many) >= MeanSqDistToHead(w, few) {
		t.Fatalf("more heads did not reduce mean squared distance: %v vs %v",
			MeanSqDistToHead(w, many), MeanSqDistToHead(w, few))
	}
}

// With k well-spread heads, the empirical mean squared member→head
// distance should be on the order of Lemma 1's prediction.
func TestMeanSqDistTracksLemma1(t *testing.T) {
	w := testNet(t, 2000, 5)
	// Pick heads on a rough lattice by taking nodes nearest to 8 cell
	// centers of a 2x2x2 partition.
	var heads []int
	for _, cx := range []float64{50, 150} {
		for _, cy := range []float64{50, 150} {
			for _, cz := range []float64{50, 150} {
				target := geom.Vec3{X: cx, Y: cy, Z: cz}
				best, bestD := -1, math.Inf(1)
				for _, n := range w.Nodes {
					if d := n.Pos.Dist(target); d < bestD {
						best, bestD = n.ID, d
					}
				}
				heads = append(heads, best)
			}
		}
	}
	a := AssignNearest(w, heads)
	got := MeanSqDistToHead(w, a)
	want := energy.ExpectedSqDistToCH(200, len(heads))
	// Lattice heads with cube-shaped (not spherical) cells: expect
	// agreement within a factor ~1.5.
	if got < want/2 || got > want*2 {
		t.Fatalf("empirical E[d²]=%v, Lemma 1 predicts %v", got, want)
	}
}

func TestValidateHeads(t *testing.T) {
	w := testNet(t, 10, 6)
	if err := ValidateHeads(w, []int{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := ValidateHeads(w, []int{1, 1}, 0); err == nil {
		t.Fatal("duplicate head accepted")
	}
	if err := ValidateHeads(w, []int{-2}, 0); err == nil {
		t.Fatal("negative head accepted")
	}
	if err := ValidateHeads(w, []int{10}, 0); err == nil {
		t.Fatal("out-of-range head accepted")
	}
	w.Nodes[4].Battery.Draw(5)
	if err := ValidateHeads(w, []int{4}, 0); err == nil {
		t.Fatal("dead head accepted")
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int{5, 1, 3}
	out := SortedCopy(in)
	if out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Fatalf("SortedCopy = %v", out)
	}
	if in[0] != 5 {
		t.Fatal("SortedCopy mutated input")
	}
}

func TestRelayModeString(t *testing.T) {
	if HoldAndBurst.String() != "hold-and-burst" {
		t.Fatal(HoldAndBurst.String())
	}
	if ForwardPerPacket.String() != "forward-per-packet" {
		t.Fatal(ForwardPerPacket.String())
	}
	if RelayMode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
}

func TestMeanSqDistPanicsOnMismatch(t *testing.T) {
	w := testNet(t, 5, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	MeanSqDistToHead(w, Assignment{Head: []int{0}})
}
