package prof

import (
	"bytes"
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"qlec/internal/obs"
)

// ValidKind reports whether kind names a capturable profile.
func ValidKind(kind string) bool {
	switch kind {
	case "cpu", "heap", "goroutine", "block", "mutex":
		return true
	}
	return false
}

// cpuMu serialises CPU captures: the runtime allows only one
// StartCPUProfile per process, and a -cpuprofile flag may already
// hold it for the process lifetime.
var cpuMu sync.Mutex

// Capture takes one profile of the given kind. CPU captures sample
// for d (clamped to [100ms, 30s], default 2s) and honour ctx
// cancellation; the lookup kinds are instantaneous. The returned
// artifact has no ID until it is added to a Store.
func Capture(ctx context.Context, kind string, d time.Duration) (*Artifact, error) {
	now := time.Now()
	switch kind {
	case "cpu":
		if d <= 0 {
			d = 2 * time.Second
		}
		if d < 100*time.Millisecond {
			d = 100 * time.Millisecond
		}
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		data, err := captureCPU(ctx, d)
		if err != nil {
			return nil, err
		}
		return &Artifact{
			Kind: "cpu", Format: "pprof", CreatedAt: now,
			DurationSeconds: d.Seconds(), Data: data,
		}, nil
	case "heap", "goroutine", "block", "mutex":
		p := pprof.Lookup(kind)
		if p == nil {
			return nil, fmt.Errorf("prof: unknown profile %q", kind)
		}
		var buf bytes.Buffer
		// debug=1 keeps the capture human-readable and parseable by
		// qlecprof's stdlib text parser; block/mutex stay empty unless
		// the daemon enabled the corresponding runtime rates
		// (-pprof-block / -pprof-mutex).
		if err := p.WriteTo(&buf, 1); err != nil {
			return nil, err
		}
		return &Artifact{Kind: kind, Format: "text", CreatedAt: now, Data: buf.Bytes()}, nil
	default:
		return nil, fmt.Errorf("prof: invalid profile kind %q", kind)
	}
}

func captureCPU(ctx context.Context, d time.Duration) ([]byte, error) {
	if !cpuMu.TryLock() {
		return nil, fmt.Errorf("prof: a cpu capture is already running")
	}
	defer cpuMu.Unlock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Typically "cpu profiling already in use" from a -cpuprofile
		// flag held for the whole process.
		return nil, err
	}
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// AutoCapturer snapshots a CPU+heap profile pair when an anomaly
// trigger fires (advisor scale-up flip, SLO burn), deduped per reason
// and rate-limited by MinGap so a flapping advisor cannot flood the
// store.
type AutoCapturer struct {
	store  *Store
	ctx    context.Context
	cpuDur time.Duration
	minGap time.Duration
	total  *obs.CounterVec

	mu       sync.Mutex
	last     map[string]time.Time
	inFlight bool
	wg       sync.WaitGroup
}

// NewAutoCapturer wires auto-capture into st. ctx bounds in-flight
// CPU sampling at shutdown; minGap <= 0 defaults to 5 minutes.
func NewAutoCapturer(ctx context.Context, st *Store, reg *obs.Registry, minGap time.Duration) *AutoCapturer {
	if minGap <= 0 {
		minGap = 5 * time.Minute
	}
	a := &AutoCapturer{
		store:  st,
		ctx:    ctx,
		cpuDur: 2 * time.Second,
		minGap: minGap,
		last:   make(map[string]time.Time),
	}
	if reg != nil {
		a.total = reg.CounterVec("qlecd_profiles_autocaptured_total",
			"Profiles captured automatically on anomaly triggers.",
			"reason")
	}
	return a
}

// SetCPUDuration overrides the CPU sampling window for auto
// captures (default 2s). Not safe to call once triggers may fire.
func (a *AutoCapturer) SetCPUDuration(d time.Duration) {
	if d > 0 {
		a.cpuDur = d
	}
}

// Trigger requests an async CPU+heap capture tagged with reason.
// Returns true when a capture was started, false when suppressed
// (rate limit for that reason, or one already in flight). Nil-safe.
func (a *AutoCapturer) Trigger(reason string) bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	now := time.Now()
	if a.inFlight || now.Sub(a.last[reason]) < a.minGap {
		a.mu.Unlock()
		return false
	}
	a.last[reason] = now
	a.inFlight = true
	a.wg.Add(1)
	a.mu.Unlock()

	go func() {
		defer a.wg.Done()
		defer func() {
			a.mu.Lock()
			a.inFlight = false
			a.mu.Unlock()
		}()
		if cpu, err := Capture(a.ctx, "cpu", a.cpuDur); err == nil {
			cpu.Reason = reason
			a.store.Add(cpu)
			if a.total != nil {
				a.total.With(reason).Inc()
			}
		}
		if heap, err := Capture(a.ctx, "heap", 0); err == nil {
			heap.Reason = reason
			a.store.Add(heap)
			if a.total != nil {
				a.total.With(reason).Inc()
			}
		}
	}()
	return true
}

// Wait blocks until in-flight captures finish (test/shutdown helper).
func (a *AutoCapturer) Wait() {
	if a == nil {
		return
	}
	a.wg.Wait()
}
