//go:build unix

package prof

import "syscall"

// processCPUSeconds returns the process's cumulative user+system CPU
// time. getrusage is used instead of the /cpu/classes/* runtime
// metrics because those only refresh at GC boundaries — between GCs
// their deltas read as zero, which would zero out every short
// bracket. getrusage is a single cheap syscall and always current.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	tv := func(t syscall.Timeval) float64 {
		return float64(t.Sec) + float64(t.Usec)/1e6
	}
	return tv(ru.Utime) + tv(ru.Stime)
}
