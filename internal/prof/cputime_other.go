//go:build !unix

package prof

// processCPUSeconds is unavailable off unix; brackets there report
// zero CPU seconds but still measure wall time, allocs and GC counts.
func processCPUSeconds() float64 { return 0 }
