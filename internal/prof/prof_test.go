package prof

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"qlec/internal/obs"
)

// sink defeats dead-allocation elimination in bracket tests.
var sink [][]byte

func TestBracketMeasuresAllocsAndCPU(t *testing.T) {
	b := Begin()
	sink = sink[:0]
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64*1024))
	}
	// Burn a little CPU so getrusage moves even on a fast box.
	x := 0
	deadline := time.Now().Add(30 * time.Millisecond)
	for time.Now().Before(deadline) {
		x++
	}
	u := b.End()
	_ = x
	if u.AllocBytes < 64*64*1024 {
		t.Fatalf("AllocBytes = %d, want >= %d", u.AllocBytes, 64*64*1024)
	}
	if u.WallSeconds <= 0 {
		t.Fatalf("WallSeconds = %v, want > 0", u.WallSeconds)
	}
	if runtime.GOOS == "linux" && u.CPUSeconds <= 0 {
		t.Fatalf("CPUSeconds = %v, want > 0 on linux", u.CPUSeconds)
	}
	// A closed bracket returns zero on re-End.
	if again := b.End(); !again.IsZero() {
		t.Fatalf("second End() = %+v, want zero", again)
	}
}

func TestUsageAddAndIsZero(t *testing.T) {
	var u Usage
	if !u.IsZero() {
		t.Fatal("zero Usage should report IsZero")
	}
	u.Add(Usage{CPUSeconds: 1, WallSeconds: 2, AllocBytes: 3, PeakHeapDelta: 4, GCCount: 5})
	u.Add(Usage{CPUSeconds: 1, AllocBytes: 7})
	if u.CPUSeconds != 2 || u.WallSeconds != 2 || u.AllocBytes != 10 ||
		u.PeakHeapDelta != 4 || u.GCCount != 5 {
		t.Fatalf("after Add: %+v", u)
	}
	if u.IsZero() {
		t.Fatal("non-zero Usage should not report IsZero")
	}
}

func TestStoreFIFOCap(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(3, reg)
	var ids []string
	for i := 0; i < 5; i++ {
		a := st.Add(&Artifact{Kind: "heap", Format: "text", Reason: "manual",
			Data: []byte{byte(i)}})
		ids = append(ids, a.ID)
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (FIFO cap)", st.Len())
	}
	if st.Get(ids[0]) != nil || st.Get(ids[1]) != nil {
		t.Fatal("oldest artifacts should have been evicted")
	}
	if got := st.Get(""); got == nil || got.ID != ids[4] {
		t.Fatalf("Get(\"\") = %v, want newest %s", got, ids[4])
	}
	list := st.List()
	if len(list) != 3 || list[0].ID != ids[4] || list[2].ID != ids[2] {
		t.Fatalf("List order wrong: %+v", list)
	}
	for _, m := range list {
		if m.Data != nil {
			t.Fatal("List must omit payloads")
		}
		if m.SizeBytes != 1 {
			t.Fatalf("SizeBytes = %d, want 1", m.SizeBytes)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	if !strings.Contains(buf.String(), "qlecd_profiles_held 3") {
		t.Fatalf("exposition missing qlecd_profiles_held 3:\n%s", buf.String())
	}
}

func TestCaptureKinds(t *testing.T) {
	if _, err := Capture(context.Background(), "bogus", 0); err == nil {
		t.Fatal("expected error for invalid kind")
	}
	heap, err := Capture(context.Background(), "heap", 0)
	if err != nil {
		t.Fatalf("heap capture: %v", err)
	}
	if heap.Format != "text" || len(heap.Data) == 0 {
		t.Fatalf("heap artifact: format=%q size=%d", heap.Format, len(heap.Data))
	}
	p, err := ParseText(bytes.NewReader(heap.Data))
	if err != nil {
		t.Fatalf("parse heap capture: %v", err)
	}
	if p.Kind != "heap" {
		t.Fatalf("parsed kind = %q, want heap", p.Kind)
	}
	gor, err := Capture(context.Background(), "goroutine", 0)
	if err != nil {
		t.Fatalf("goroutine capture: %v", err)
	}
	gp, err := ParseText(bytes.NewReader(gor.Data))
	if err != nil {
		t.Fatalf("parse goroutine capture: %v", err)
	}
	if gp.Kind != "goroutine" || len(gp.Entries) == 0 {
		t.Fatalf("goroutine profile: kind=%q entries=%d", gp.Kind, len(gp.Entries))
	}
}

func TestCaptureCPU(t *testing.T) {
	a, err := Capture(context.Background(), "cpu", 150*time.Millisecond)
	if err != nil {
		t.Fatalf("cpu capture: %v", err)
	}
	if a.Format != "pprof" || len(a.Data) < 2 {
		t.Fatalf("cpu artifact: format=%q size=%d", a.Format, len(a.Data))
	}
	// StartCPUProfile writes a gzipped protobuf.
	if a.Data[0] != 0x1f || a.Data[1] != 0x8b {
		t.Fatalf("cpu capture not gzip-framed: % x", a.Data[:2])
	}
	if a.DurationSeconds <= 0 {
		t.Fatalf("DurationSeconds = %v", a.DurationSeconds)
	}
}

func TestAutoCapturerDedupeAndRateLimit(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(8, reg)
	ac := NewAutoCapturer(context.Background(), st, reg, time.Hour)
	ac.SetCPUDuration(120 * time.Millisecond)
	if !ac.Trigger("scale-up") {
		t.Fatal("first trigger should start a capture")
	}
	if ac.Trigger("scale-up") {
		t.Fatal("second trigger within MinGap must be suppressed")
	}
	ac.Wait()
	// Same reason still rate-limited after completion.
	if ac.Trigger("scale-up") {
		t.Fatal("trigger after completion but within MinGap must be suppressed")
	}
	// A different reason is allowed once nothing is in flight.
	if !ac.Trigger("queue-slo-burn") {
		t.Fatal("different reason should capture")
	}
	ac.Wait()
	list := st.List()
	if len(list) != 4 {
		t.Fatalf("store has %d artifacts, want 4 (cpu+heap per trigger): %+v", len(list), list)
	}
	kinds := map[string]int{}
	for _, a := range list {
		kinds[a.Kind]++
		if a.Reason != "scale-up" && a.Reason != "queue-slo-burn" {
			t.Fatalf("unexpected reason %q", a.Reason)
		}
	}
	if kinds["cpu"] != 2 || kinds["heap"] != 2 {
		t.Fatalf("kind mix = %v", kinds)
	}
}

func TestSamplerRingAndPeak(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(reg, SamplerOptions{RingSize: 2})
	start := time.Now()
	s.SampleNow()
	sink = sink[:0]
	for i := 0; i < 32; i++ {
		sink = append(sink, make([]byte, 128*1024))
	}
	row := s.SampleNow()
	if row.HeapLiveBytes == 0 || row.Goroutines <= 0 {
		t.Fatalf("implausible sample: %+v", row)
	}
	if got := len(s.Trend()); got != 2 {
		t.Fatalf("ring len = %d, want 2", got)
	}
	s.SampleNow() // wraps
	if got := len(s.Trend()); got != 2 {
		t.Fatalf("ring len after wrap = %d, want 2", got)
	}
	if _, ok := s.PeakHeapSince(start); !ok {
		t.Fatal("PeakHeapSince should see samples taken after start")
	}
	if _, ok := s.PeakHeapSince(time.Now().Add(time.Hour)); ok {
		t.Fatal("PeakHeapSince in the future should report no samples")
	}
	var nilSampler *Sampler
	if _, ok := nilSampler.PeakHeapSince(start); ok {
		t.Fatal("nil sampler must report no samples")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("exposition: %v", err)
	}
	for _, want := range []string{
		"qlecd_runtime_heap_live_bytes",
		"qlecd_runtime_goroutines",
		"qlecd_runtime_gc_cpu_fraction",
		"qlecd_runtime_sched_latency_seconds",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %s", want)
		}
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(reg, SamplerOptions{Interval: 5 * time.Millisecond, RingSize: 16})
	s.Start()
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	if len(s.Trend()) == 0 {
		t.Fatal("background loop produced no samples")
	}
}
