package prof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// TextProfile is a parsed debug=1 pprof text capture (heap,
// goroutine, block or mutex — the formats runtime/pprof emits when
// WriteTo is called with debug=1). CPU profiles are protobuf-only
// and are not parsed here; fetch those and open them with
// `go tool pprof`.
type TextProfile struct {
	// Kind is "heap", "goroutine" or "contention" (block and mutex
	// share the contention text format).
	Kind string
	// CyclesPerSecond converts contention cycle counts to seconds;
	// zero for heap/goroutine profiles.
	CyclesPerSecond float64
	Entries         []TextEntry
}

// TextEntry is one stack record.
type TextEntry struct {
	// Count / Value depend on Kind: heap = in-use objects / in-use
	// bytes; goroutine = goroutines / goroutines; contention =
	// events / cycles blocked.
	Count int64
	Value int64
	// AllocCount / AllocValue are the bracketed cumulative pair on
	// heap entries; zero elsewhere.
	AllocCount int64
	AllocValue int64
	// Stack holds symbolised frames (innermost first) when the text
	// carried "#" frame lines, else the raw hex addresses.
	Stack []string
	addrs []string
}

// Key identifies the entry's call stack for diffing.
func (e *TextEntry) Key() string { return strings.Join(e.Stack, ";") }

// Leaf is the innermost frame, or "?" for an empty stack.
func (e *TextEntry) Leaf() string {
	if len(e.Stack) == 0 {
		return "?"
	}
	return e.Stack[0]
}

// ParseText parses a debug=1 text profile.
func ParseText(r io.Reader) (*TextProfile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	p := &TextProfile{}
	var cur *TextEntry
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		switch {
		case strings.HasPrefix(trimmed, "heap profile:"):
			p.Kind = "heap"
			continue
		case strings.HasPrefix(trimmed, "goroutine profile:"):
			p.Kind = "goroutine"
			continue
		case strings.HasPrefix(trimmed, "---"):
			// "--- contention:" (block) or "--- mutex:".
			p.Kind = "contention"
			continue
		case strings.HasPrefix(trimmed, "cycles/second="):
			p.CyclesPerSecond, _ = strconv.ParseFloat(
				strings.TrimPrefix(trimmed, "cycles/second="), 64)
			continue
		case strings.HasPrefix(trimmed, "sampling period="):
			continue
		case strings.HasPrefix(trimmed, "#"):
			// Frame line: "#\t0xADDR\tsymbol+0xOFF\tfile:line". The
			// heap tail ("# runtime.MemStats", "# Alloc = ...")
			// doesn't match and terminates the current entry.
			fields := strings.Fields(trimmed)
			if cur != nil && len(fields) >= 3 && strings.HasPrefix(fields[1], "0x") {
				sym := fields[2]
				if i := strings.LastIndex(sym, "+0x"); i > 0 {
					sym = sym[:i]
				}
				cur.Stack = append(cur.Stack, sym)
			} else {
				cur = nil
			}
			continue
		}
		e, ok := parseEntryLine(trimmed, p.Kind)
		if !ok {
			continue
		}
		p.Entries = append(p.Entries, e)
		cur = &p.Entries[len(p.Entries)-1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.Kind == "" {
		return nil, fmt.Errorf("prof: unrecognised text profile (no header line)")
	}
	// Entries without symbol frames fall back to their addresses so
	// Key/Leaf still distinguish stacks.
	for i := range p.Entries {
		if len(p.Entries[i].Stack) == 0 {
			p.Entries[i].Stack = p.Entries[i].addrs
		}
	}
	return p, nil
}

func parseEntryLine(line, kind string) (TextEntry, bool) {
	head, tail, found := strings.Cut(line, "@")
	if !found {
		return TextEntry{}, false
	}
	var e TextEntry
	for _, a := range strings.Fields(tail) {
		if strings.HasPrefix(a, "0x") {
			e.addrs = append(e.addrs, a)
		}
	}
	fields := strings.Fields(strings.ReplaceAll(head, ":", " "))
	nums := make([]int64, 0, 4)
	for _, f := range fields {
		f = strings.Trim(f, "[]")
		if f == "" {
			continue
		}
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return TextEntry{}, false
		}
		nums = append(nums, n)
	}
	switch {
	case kind == "heap" && len(nums) == 4:
		e.Count, e.Value, e.AllocCount, e.AllocValue = nums[0], nums[1], nums[2], nums[3]
	case kind == "goroutine" && len(nums) == 1:
		e.Count, e.Value = nums[0], nums[0]
	case kind == "contention" && len(nums) == 2:
		e.Value, e.Count = nums[0], nums[1]
	default:
		return TextEntry{}, false
	}
	return e, true
}

// TopRow is one line of a Top or Diff report.
type TopRow struct {
	Value int64   // primary metric (bytes, goroutines, or cycles)
	Count int64   // record count (objects, goroutines, events)
	Frac  float64 // share of the profile total (Top only)
	Stack []string
}

// Top returns the n heaviest stacks. For heap profiles alloc=true
// ranks by cumulative allocated bytes instead of in-use bytes.
func (p *TextProfile) Top(n int, alloc bool) []TopRow {
	rows := make([]TopRow, 0, len(p.Entries))
	var total int64
	for i := range p.Entries {
		e := &p.Entries[i]
		v, c := e.Value, e.Count
		if alloc && p.Kind == "heap" {
			v, c = e.AllocValue, e.AllocCount
		}
		total += v
		rows = append(rows, TopRow{Value: v, Count: c, Stack: e.Stack})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Value > rows[j].Value })
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	for i := range rows {
		if total > 0 {
			rows[i].Frac = float64(rows[i].Value) / float64(total)
		}
	}
	return rows
}

// Diff returns per-stack deltas (b - a), largest absolute delta
// first, for two profiles of the same kind. Stacks present on only
// one side count from zero. alloc selects the cumulative pair for
// heap profiles.
func Diff(a, b *TextProfile, n int, alloc bool) ([]TopRow, error) {
	if a.Kind != b.Kind {
		return nil, fmt.Errorf("prof: cannot diff %s against %s", a.Kind, b.Kind)
	}
	type pair struct {
		v, c  int64
		stack []string
	}
	acc := map[string]*pair{}
	fold := func(p *TextProfile, sign int64) {
		for i := range p.Entries {
			e := &p.Entries[i]
			v, c := e.Value, e.Count
			if alloc && p.Kind == "heap" {
				v, c = e.AllocValue, e.AllocCount
			}
			k := e.Key()
			if acc[k] == nil {
				acc[k] = &pair{stack: e.Stack}
			}
			acc[k].v += sign * v
			acc[k].c += sign * c
		}
	}
	fold(a, -1)
	fold(b, +1)
	rows := make([]TopRow, 0, len(acc))
	for _, p := range acc {
		if p.v == 0 && p.c == 0 {
			continue
		}
		rows = append(rows, TopRow{Value: p.v, Count: p.c, Stack: p.stack})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ai, aj := rows[i].Value, rows[j].Value
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		return ai > aj
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows, nil
}
