package prof

import (
	"fmt"
	"sync"
	"time"

	"qlec/internal/obs"
)

// Artifact is one captured profile held in the store. Data is omitted
// from list responses (SizeBytes stands in) and streamed by
// GET /v1/profiles/{id}.
type Artifact struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // cpu | heap | goroutine | block | mutex
	// Format is "pprof" (gzipped protobuf, for go tool pprof) for cpu
	// captures and "text" (debug=1) for the lookup profiles, which
	// qlecprof can summarise and diff without the pprof toolchain.
	Format string `json:"format"`
	// Reason records why the capture happened: "manual" for API
	// requests, or the anomaly trigger ("scale-up", ...).
	Reason    string    `json:"reason"`
	Instance  string    `json:"instance,omitempty"` // set on fleet-aggregated listings
	CreatedAt time.Time `json:"createdAt"`
	// DurationSeconds is the sampling window for cpu captures.
	DurationSeconds float64 `json:"durationSeconds,omitempty"`
	SizeBytes       int     `json:"sizeBytes"`
	Data            []byte  `json:"-"`
}

// meta returns a copy without the payload, for listings.
func (a *Artifact) meta() Artifact {
	m := *a
	m.Data = nil
	return m
}

// Store holds captured profiles FIFO-capped at max, mirroring the
// trace and audit tables: old artifacts are dropped as new ones
// arrive, and qlecd_profiles_held reports the current count.
type Store struct {
	mu   sync.Mutex
	arts []*Artifact
	max  int
	seq  uint64
}

// NewStore creates a store capped at max artifacts (min 1) and
// registers the qlecd_profiles_held gauge on reg.
func NewStore(max int, reg *obs.Registry) *Store {
	if max < 1 {
		max = 1
	}
	st := &Store{max: max}
	if reg != nil {
		reg.GaugeFunc("qlecd_profiles_held",
			"Profile artifacts currently held in the in-memory store.",
			func() float64 {
				st.mu.Lock()
				defer st.mu.Unlock()
				return float64(len(st.arts))
			})
	}
	return st
}

// Add assigns an ID and inserts the artifact, evicting the oldest
// entries beyond the cap. Returns the stored artifact.
func (st *Store) Add(a *Artifact) *Artifact {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	a.ID = fmt.Sprintf("p%08d", st.seq)
	if a.CreatedAt.IsZero() {
		a.CreatedAt = time.Now()
	}
	a.SizeBytes = len(a.Data)
	st.arts = append(st.arts, a)
	if over := len(st.arts) - st.max; over > 0 {
		st.arts = append([]*Artifact(nil), st.arts[over:]...)
	}
	return a
}

// List returns artifact metadata, newest first, without payloads.
func (st *Store) List() []Artifact {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Artifact, 0, len(st.arts))
	for i := len(st.arts) - 1; i >= 0; i-- {
		out = append(out, st.arts[i].meta())
	}
	return out
}

// Get returns the artifact with the given ID (payload included), or
// nil. An empty id returns the newest artifact, if any.
func (st *Store) Get(id string) *Artifact {
	st.mu.Lock()
	defer st.mu.Unlock()
	if id == "" {
		if len(st.arts) == 0 {
			return nil
		}
		return st.arts[len(st.arts)-1]
	}
	for _, a := range st.arts {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// Len reports the current artifact count.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.arts)
}
