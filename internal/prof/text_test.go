package prof

import (
	"strings"
	"testing"
)

const heapText = `heap profile: 2: 2048 [4: 8192] @ heap/1048576
1: 1024 [2: 4096] @ 0x4011aa 0x4020bb
#	0x4011aa	qlec/internal/sim.(*Engine).step+0x2a	/root/repo/internal/sim/engine.go:100
#	0x4020bb	main.main+0x1b	/root/repo/cmd/qlecsim/main.go:40
1: 1024 [2: 4096] @ 0x4033cc
#	0x4033cc	qlec/internal/qlearn.(*Table).Update+0x8c	/root/repo/internal/qlearn/table.go:55

# runtime.MemStats
# Alloc = 123456
# TotalAlloc = 789012
`

const goroutineText = `goroutine profile: total 5
3 @ 0x43aa11 0x43bb22
#	0x43aa11	runtime.gopark+0xde	/usr/local/go/src/runtime/proc.go:402
#	0x43bb22	qlec/internal/service.(*Server).worker+0x9a	/root/repo/internal/service/worker.go:30
2 @ 0x43cc33
#	0x43cc33	runtime.gopark+0xde	/usr/local/go/src/runtime/proc.go:402
`

const blockText = `--- contention:
cycles/second=2500000000
5000000000 4 @ 0x50aa11
#	0x50aa11	sync.(*Mutex).Lock+0x45	/usr/local/go/src/sync/mutex.go:90
2500000000 1 @ 0x50bb22
#	0x50bb22	runtime.chanrecv1+0x12	/usr/local/go/src/runtime/chan.go:442
`

func TestParseHeapText(t *testing.T) {
	p, err := ParseText(strings.NewReader(heapText))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "heap" || len(p.Entries) != 2 {
		t.Fatalf("kind=%q entries=%d", p.Kind, len(p.Entries))
	}
	e := p.Entries[0]
	if e.Count != 1 || e.Value != 1024 || e.AllocCount != 2 || e.AllocValue != 4096 {
		t.Fatalf("entry 0: %+v", e)
	}
	if e.Leaf() != "qlec/internal/sim.(*Engine).step" {
		t.Fatalf("leaf = %q (offset suffix should be stripped)", e.Leaf())
	}
	if len(e.Stack) != 2 || e.Stack[1] != "main.main" {
		t.Fatalf("stack = %v", e.Stack)
	}
	// The MemStats tail must not leak frames into the last entry.
	if got := len(p.Entries[1].Stack); got != 1 {
		t.Fatalf("entry 1 stack len = %d, want 1 (MemStats tail leaked?)", got)
	}
}

func TestParseGoroutineText(t *testing.T) {
	p, err := ParseText(strings.NewReader(goroutineText))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "goroutine" || len(p.Entries) != 2 {
		t.Fatalf("kind=%q entries=%d", p.Kind, len(p.Entries))
	}
	if p.Entries[0].Count != 3 || p.Entries[0].Value != 3 {
		t.Fatalf("entry 0: %+v", p.Entries[0])
	}
}

func TestParseContentionText(t *testing.T) {
	p, err := ParseText(strings.NewReader(blockText))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "contention" || p.CyclesPerSecond != 2.5e9 {
		t.Fatalf("kind=%q cps=%v", p.Kind, p.CyclesPerSecond)
	}
	if p.Entries[0].Value != 5000000000 || p.Entries[0].Count != 4 {
		t.Fatalf("entry 0: %+v", p.Entries[0])
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	if _, err := ParseText(strings.NewReader("not a profile\n1 2 3\n")); err == nil {
		t.Fatal("expected error for unrecognised input")
	}
}

func TestTopOrderingAndFractions(t *testing.T) {
	p, _ := ParseText(strings.NewReader(blockText))
	rows := p.Top(10, false)
	if len(rows) != 2 || rows[0].Value < rows[1].Value {
		t.Fatalf("top not sorted desc: %+v", rows)
	}
	if rows[0].Frac <= rows[1].Frac || rows[0].Frac > 1 {
		t.Fatalf("fractions wrong: %+v", rows)
	}
	// n truncates.
	if got := len(p.Top(1, false)); got != 1 {
		t.Fatalf("Top(1) len = %d", got)
	}
}

func TestTopHeapAllocSwitch(t *testing.T) {
	p, _ := ParseText(strings.NewReader(heapText))
	inuse := p.Top(10, false)
	alloc := p.Top(10, true)
	if inuse[0].Value != 1024 || alloc[0].Value != 4096 {
		t.Fatalf("inuse=%d alloc=%d", inuse[0].Value, alloc[0].Value)
	}
}

func TestDiff(t *testing.T) {
	a, _ := ParseText(strings.NewReader(heapText))
	grown := strings.Replace(heapText,
		"1: 1024 [2: 4096] @ 0x4033cc",
		"3: 9216 [6: 20480] @ 0x4033cc", 1)
	b, _ := ParseText(strings.NewReader(grown))
	rows, err := Diff(a, b, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("diff rows = %+v, want exactly the grown stack", rows)
	}
	if rows[0].Value != 9216-1024 || rows[0].Count != 2 {
		t.Fatalf("delta = %+v", rows[0])
	}
	if rows[0].Stack[0] != "qlec/internal/qlearn.(*Table).Update" {
		t.Fatalf("stack = %v", rows[0].Stack)
	}
	gp, _ := ParseText(strings.NewReader(goroutineText))
	if _, err := Diff(a, gp, 10, false); err == nil {
		t.Fatal("cross-kind diff must error")
	}
}
