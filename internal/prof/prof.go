// Package prof is the continuous-profiling and resource-attribution
// layer for qlecd (DESIGN.md §16). It has three parts:
//
//   - Bracket / Usage: cheap begin/end deltas (CPU seconds via
//     getrusage, alloc bytes / GC cycles / live heap via
//     runtime/metrics) used to attribute cost to every job and sweep
//     cell the daemon executes.
//   - Sampler: a background loop over runtime/metrics that feeds
//     qlecd_runtime_* gauges and histograms plus a bounded in-memory
//     ring for trend queries (GET /v1/runtime).
//   - Store / Capture / AutoCapturer: a FIFO-capped in-memory store of
//     pprof artifacts (cpu/heap/goroutine/block/mutex) behind
//     POST/GET /v1/profiles, with rate-limited capture-on-anomaly
//     driven by the autoscale advisor.
//
// Everything is stdlib-only and registers into the internal/obs
// registry. Nothing here touches the simulation hot path: a daemon
// with the sampler disabled and no brackets active pays nothing, and
// the bench binaries never import this package's runtime loop.
package prof

import (
	"runtime/metrics"
	"time"
)

// Usage is the resource bill for one unit of executed work (a job or
// a sweep cell). All fields are deltas over the execution bracket.
//
// CPUSeconds and AllocBytes are process-wide deltas: under concurrent
// workers a bracket also observes its neighbours' activity, so usage
// over-attributes on a busy daemon. That trade keeps the bracket at
// two syscalls + two metrics.Read calls instead of per-goroutine
// accounting; DESIGN.md §16 discusses why that is the right point.
type Usage struct {
	// CPUSeconds is user+system CPU time consumed by the process
	// during the bracket (getrusage, not runtime/metrics — the
	// /cpu/classes/* metrics only refresh at GC boundaries).
	CPUSeconds float64 `json:"cpuSeconds"`
	// WallSeconds is elapsed wall-clock time for the bracket.
	WallSeconds float64 `json:"wallSeconds"`
	// AllocBytes is the cumulative heap allocation delta
	// (/gc/heap/allocs:bytes), which runtime/metrics tracks
	// accurately between GCs.
	AllocBytes uint64 `json:"allocBytes"`
	// PeakHeapDelta is the observed growth of the live heap over the
	// bracket: max(live seen during/after bracket) - live at start,
	// floored at zero. Without a running Sampler only the endpoint is
	// seen, making this a lower bound on the true peak.
	PeakHeapDelta uint64 `json:"peakHeapDelta"`
	// GCCount is the number of completed GC cycles during the bracket.
	GCCount uint64 `json:"gcCount"`
}

// Add accumulates o into u (used to roll cells up into jobs and jobs
// up into batches). Wall time adds too: for work executed in parallel
// the sum exceeds elapsed time, the same convention as CPU seconds.
func (u *Usage) Add(o Usage) {
	u.CPUSeconds += o.CPUSeconds
	u.WallSeconds += o.WallSeconds
	u.AllocBytes += o.AllocBytes
	u.PeakHeapDelta += o.PeakHeapDelta
	u.GCCount += o.GCCount
}

// IsZero reports whether the bill is empty (e.g. a pure cache hit).
func (u Usage) IsZero() bool {
	return u.CPUSeconds == 0 && u.WallSeconds == 0 && u.AllocBytes == 0 &&
		u.PeakHeapDelta == 0 && u.GCCount == 0
}

// bracketSamples is the fixed runtime/metrics batch read at both ends
// of a bracket. Order matters: indexes are hard-coded below.
var bracketNames = []string{
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/memory/classes/heap/objects:bytes",
}

// Bracket measures resource usage between Begin and End.
type Bracket struct {
	start     time.Time
	cpu       float64
	allocs    uint64
	gcCycles  uint64
	heapLive  uint64
	samples   [3]metrics.Sample
	completed bool
}

// Begin starts a measurement bracket. The cost is one getrusage call
// and one runtime/metrics batch read (no stop-the-world).
func Begin() *Bracket {
	b := &Bracket{}
	for i, n := range bracketNames {
		b.samples[i].Name = n
	}
	metrics.Read(b.samples[:])
	b.start = time.Now()
	b.cpu = processCPUSeconds()
	b.allocs = b.samples[0].Value.Uint64()
	b.gcCycles = b.samples[1].Value.Uint64()
	b.heapLive = b.samples[2].Value.Uint64()
	return b
}

// Start returns the wall-clock instant the bracket began.
func (b *Bracket) Start() time.Time { return b.start }

// PeakSource supplies an observed live-heap high-water mark since a
// given instant; *Sampler implements it. A nil source (or one with no
// samples in the window) degrades to the bracket's endpoint reading.
type PeakSource interface {
	PeakHeapSince(t time.Time) (bytes uint64, ok bool)
}

// End closes the bracket and returns the bill. Safe to call once;
// subsequent calls return a zero Usage.
func (b *Bracket) End() Usage { return b.EndWith(nil) }

// EndWith closes the bracket, consulting ps (may be nil) for a live-
// heap peak observed during the bracket window.
func (b *Bracket) EndWith(ps PeakSource) Usage {
	if b == nil || b.completed {
		return Usage{}
	}
	b.completed = true
	metrics.Read(b.samples[:])
	u := Usage{
		WallSeconds: time.Since(b.start).Seconds(),
	}
	if cpu := processCPUSeconds(); cpu > b.cpu {
		u.CPUSeconds = cpu - b.cpu
	}
	if a := b.samples[0].Value.Uint64(); a > b.allocs {
		u.AllocBytes = a - b.allocs
	}
	if g := b.samples[1].Value.Uint64(); g > b.gcCycles {
		u.GCCount = g - b.gcCycles
	}
	peak := b.samples[2].Value.Uint64()
	if ps != nil {
		if p, ok := ps.PeakHeapSince(b.start); ok && p > peak {
			peak = p
		}
	}
	if peak > b.heapLive {
		u.PeakHeapDelta = peak - b.heapLive
	}
	return u
}
