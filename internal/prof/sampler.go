package prof

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"qlec/internal/obs"
)

// RuntimeSample is one row of the sampler's trend ring, served by
// GET /v1/runtime. Values are instantaneous except GCCPUFraction,
// which is cumulative-since-start (the runtime refreshes the
// underlying /cpu/classes/* metrics at GC boundaries, so it can lag
// by up to one GC cycle).
type RuntimeSample struct {
	At               time.Time `json:"at"`
	HeapLiveBytes    uint64    `json:"heapLiveBytes"`
	HeapGoalBytes    uint64    `json:"heapGoalBytes"`
	Goroutines       int64     `json:"goroutines"`
	GCCycles         uint64    `json:"gcCycles"`
	GCCPUFraction    float64   `json:"gcCpuFraction"`
	SchedLatencyP50  float64   `json:"schedLatencyP50"`
	SchedLatencyP95  float64   `json:"schedLatencyP95"`
	SchedLatencyP99  float64   `json:"schedLatencyP99"`
	CPUSecondsTotal  float64   `json:"cpuSecondsTotal"`
	PauseTotalCycles uint64    `json:"pauseCount"`
}

// samplerNames is the batch read every tick. Indexes are hard-coded
// in sampleLocked.
var samplerNames = []string{
	"/memory/classes/heap/objects:bytes", // 0
	"/gc/heap/goal:bytes",                // 1
	"/sched/goroutines:goroutines",       // 2
	"/gc/cycles/total:gc-cycles",         // 3
	"/cpu/classes/gc/total:cpu-seconds",  // 4
	"/cpu/classes/total:cpu-seconds",     // 5
	"/sched/latencies:seconds",           // 6 histogram
	"/sched/pauses/total/gc:seconds",     // 7 histogram
}

// gcPauseBuckets cover 10µs .. 1s stop-the-world pauses.
var gcPauseBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}

// SamplerOptions configure NewSampler. Zero values pick defaults.
type SamplerOptions struct {
	// Interval between samples; <= 0 disables the background loop
	// (SampleNow still works for on-demand reads).
	Interval time.Duration
	// RingSize bounds the trend ring; default 600 samples
	// (10 minutes at the default 1s cadence).
	RingSize int
}

// Sampler runs a background runtime/metrics loop feeding
// qlecd_runtime_* series and a bounded trend ring.
type Sampler struct {
	interval time.Duration

	heapLive   *obs.Gauge
	heapGoal   *obs.Gauge
	goroutines *obs.Gauge
	gcCPU      *obs.Gauge
	schedP50   *obs.Gauge
	schedP95   *obs.Gauge
	schedP99   *obs.Gauge
	gcPause    *obs.Histogram

	mu         sync.Mutex
	samples    []metrics.Sample
	ring       []RuntimeSample
	ringStart  int
	ringLen    int
	prevSched  []uint64 // previous cumulative /sched/latencies counts
	prevPause  []uint64 // previous cumulative pause histogram counts
	pauseCount uint64

	stop chan struct{}
	done chan struct{}
}

// NewSampler registers the qlecd_runtime_* series on reg and returns
// a stopped sampler; call Start to begin the loop.
func NewSampler(reg *obs.Registry, opt SamplerOptions) *Sampler {
	if opt.RingSize <= 0 {
		opt.RingSize = 600
	}
	s := &Sampler{
		interval: opt.Interval,
		heapLive: reg.Gauge("qlecd_runtime_heap_live_bytes",
			"Bytes of live heap objects at the last runtime sample."),
		heapGoal: reg.Gauge("qlecd_runtime_heap_goal_bytes",
			"GC heap goal at the last runtime sample."),
		goroutines: reg.Gauge("qlecd_runtime_goroutines",
			"Goroutine count at the last runtime sample."),
		gcCPU: reg.Gauge("qlecd_runtime_gc_cpu_fraction",
			"Fraction of available CPU spent in GC since process start (refreshes at GC boundaries)."),
		gcPause: reg.Histogram("qlecd_runtime_gc_pause_seconds",
			"Stop-the-world GC pause durations observed by the runtime sampler.",
			gcPauseBuckets),
		samples: make([]metrics.Sample, len(samplerNames)),
		ring:    make([]RuntimeSample, opt.RingSize),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	sched := reg.GaugeVec("qlecd_runtime_sched_latency_seconds",
		"Scheduler latency quantiles over the last sampler window.",
		"quantile")
	s.schedP50 = sched.With("0.5")
	s.schedP95 = sched.With("0.95")
	s.schedP99 = sched.With("0.99")
	for i, n := range samplerNames {
		s.samples[i].Name = n
	}
	return s
}

// Start launches the background loop; a no-op when Interval <= 0.
func (s *Sampler) Start() {
	if s.interval <= 0 {
		close(s.done)
		return
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		s.SampleNow()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.SampleNow()
			}
		}
	}()
}

// Stop terminates the loop and waits for it to exit. Idempotent.
func (s *Sampler) Stop() {
	s.mu.Lock()
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.mu.Unlock()
	<-s.done
}

// SampleNow takes one sample immediately, updates the exported
// series and appends to the trend ring.
func (s *Sampler) SampleNow() RuntimeSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sampleLocked()
}

func (s *Sampler) sampleLocked() RuntimeSample {
	metrics.Read(s.samples)
	row := RuntimeSample{
		At:            time.Now(),
		HeapLiveBytes: s.samples[0].Value.Uint64(),
		HeapGoalBytes: s.samples[1].Value.Uint64(),
		Goroutines:    int64(s.samples[2].Value.Uint64()),
		GCCycles:      s.samples[3].Value.Uint64(),
	}
	gcCPU := s.samples[4].Value.Float64()
	totCPU := s.samples[5].Value.Float64()
	if totCPU > 0 {
		row.GCCPUFraction = gcCPU / totCPU
	}
	row.CPUSecondsTotal = processCPUSeconds()

	// Scheduler latency quantiles over the window since the previous
	// sample (cumulative histogram diffed against the last read);
	// when the window is empty the previous values are retained.
	if h := s.samples[6].Value.Float64Histogram(); h != nil {
		delta, total := diffCounts(&s.prevSched, h.Counts)
		if total > 0 {
			row.SchedLatencyP50 = histQuantile(h.Buckets, delta, total, 0.50)
			row.SchedLatencyP95 = histQuantile(h.Buckets, delta, total, 0.95)
			row.SchedLatencyP99 = histQuantile(h.Buckets, delta, total, 0.99)
			s.schedP50.Set(row.SchedLatencyP50)
			s.schedP95.Set(row.SchedLatencyP95)
			s.schedP99.Set(row.SchedLatencyP99)
		} else if s.ringLen > 0 {
			prev := s.ring[(s.ringStart+s.ringLen-1)%len(s.ring)]
			row.SchedLatencyP50 = prev.SchedLatencyP50
			row.SchedLatencyP95 = prev.SchedLatencyP95
			row.SchedLatencyP99 = prev.SchedLatencyP99
		}
	}

	// New GC pauses since the last sample feed the pause histogram:
	// each new count in a runtime bucket is observed at that bucket's
	// representative edge. Pause counts per tick are tiny (a few per
	// GC cycle) so the replay cost is negligible.
	if h := s.samples[7].Value.Float64Histogram(); h != nil {
		delta, total := diffCounts(&s.prevPause, h.Counts)
		if total > 0 {
			s.pauseCount += total
			for i, c := range delta {
				if c == 0 {
					continue
				}
				v := bucketValue(h.Buckets, i)
				for j := uint64(0); j < c; j++ {
					s.gcPause.Observe(v)
				}
			}
		}
	}
	row.PauseTotalCycles = s.pauseCount

	s.heapLive.Set(float64(row.HeapLiveBytes))
	s.heapGoal.Set(float64(row.HeapGoalBytes))
	s.goroutines.Set(float64(row.Goroutines))
	s.gcCPU.Set(row.GCCPUFraction)

	// Append to the ring.
	if s.ringLen < len(s.ring) {
		s.ring[(s.ringStart+s.ringLen)%len(s.ring)] = row
		s.ringLen++
	} else {
		s.ring[s.ringStart] = row
		s.ringStart = (s.ringStart + 1) % len(s.ring)
	}
	return row
}

// Trend returns the ring contents oldest-first.
func (s *Sampler) Trend() []RuntimeSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RuntimeSample, s.ringLen)
	for i := 0; i < s.ringLen; i++ {
		out[i] = s.ring[(s.ringStart+i)%len(s.ring)]
	}
	return out
}

// PeakHeapSince implements PeakSource: the highest live-heap reading
// in the ring at or after t. ok is false when no sample qualifies
// (sampler off, or the window is shorter than one tick). Nil-safe.
func (s *Sampler) PeakHeapSince(t time.Time) (uint64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var peak uint64
	ok := false
	for i := 0; i < s.ringLen; i++ {
		row := s.ring[(s.ringStart+i)%len(s.ring)]
		if row.At.Before(t) {
			continue
		}
		ok = true
		if row.HeapLiveBytes > peak {
			peak = row.HeapLiveBytes
		}
	}
	return peak, ok
}

// Interval reports the configured cadence (0 when disabled).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// diffCounts updates *prev to cur and returns the per-bucket delta
// plus its sum. A length change (shouldn't happen for a fixed metric)
// resets the baseline.
func diffCounts(prev *[]uint64, cur []uint64) ([]uint64, uint64) {
	if len(*prev) != len(cur) {
		*prev = make([]uint64, len(cur))
		copy(*prev, cur)
		return make([]uint64, len(cur)), 0
	}
	delta := make([]uint64, len(cur))
	var total uint64
	for i, c := range cur {
		if c >= (*prev)[i] {
			delta[i] = c - (*prev)[i]
		}
		total += delta[i]
		(*prev)[i] = c
	}
	return delta, total
}

// bucketValue picks a representative value for runtime histogram
// bucket i given its boundary slice (len(counts)+1, ±Inf at the
// ends): the midpoint of finite bounds, else the finite edge.
func bucketValue(bounds []float64, i int) float64 {
	lo, hi := bounds[i], bounds[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}

// histQuantile computes quantile q over a windowed runtime histogram.
func histQuantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= target {
			return bucketValue(bounds, i)
		}
	}
	return bucketValue(bounds, len(counts)-1)
}
