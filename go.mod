module qlec

go 1.22
