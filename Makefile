# QLEC reproduction — convenience targets (stdlib-only Go module).

GO ?= go

.PHONY: all build test race race-service serve bench bench-json bench-check figs examples obs-demo audit-demo tournament-demo fleet-e2e ci clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The daemon and the parallel runner are the most concurrency-dense code
# in the repo (worker pool, SSE fan-out, queue close/drain, metric
# registry atomics); run them under -race twice so rare interleavings
# get a second chance to fire. This also covers the /metrics scrape +
# exposition-lint e2e tests in internal/service/obs_test.go, and the
# protocol registry (init-time registration + RWMutex lookups).
race-service:
	$(GO) test -race -count=2 ./internal/service/... ./internal/runner ./internal/obs ./internal/protocol/... ./internal/sim

# Run the simulation daemon locally (Ctrl-C drains; second Ctrl-C
# force-quits). See README "Running as a service" for the API.
serve:
	$(GO) run ./cmd/qlecd -addr :8080 -data-dir qlecd-data

# Everything CI runs (see .github/workflows/ci.yml): build + vet, the
# full test suite, the race detector, and a short real sweep through the
# parallel runner under -race to shake out orchestration races that the
# unit tests' stub protocols cannot reach.
ci: build test race race-service
	$(GO) test -race -run 'TestSweepsParallelMatchSerial|TestMap' ./internal/experiment ./internal/runner
	$(GO) run -race ./cmd/qlecfig -fig ksweep -quick -workers 0 >/dev/null

bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmark trajectory: run the simulator- and selection-phase
# benchmarks with allocation stats and fold the output into a JSON file
# (name → ns/op, B/op, allocs/op, custom metrics) via cmd/qlecbench.
# Commit BENCH_PR2.json alongside performance PRs so regressions diff in
# review. BENCHTIME=1x (the default) is the quick CI mode; use e.g.
# `make bench-json BENCHTIME=2s` for stable local timings.
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_PR2.json
HOT_BENCH = ^(BenchmarkFig3aPacketDeliveryRate|BenchmarkRunnerOverhead|BenchmarkKSweepParallel|BenchmarkDecide|BenchmarkSelectPaperScale|BenchmarkSelectImproved)$$

bench-json:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -benchmem -benchtime $(BENCHTIME) \
		. ./internal/qlearn ./internal/deec \
		| $(GO) run ./cmd/qlecbench -out $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# Regression gate: rebuild the hot-path trajectory into BENCH_PR7.json
# and fail when the Fig3a QLEC benchmarks regress past the committed
# PR2 baseline on ns/op or allocs/op (qlecbench -against). allocs/op is
# stable at any benchtime; ns/op sits roughly 2x under the PR2 numbers
# after the batched-kernel work, so the 1x CI mode has margin. The 1.10
# default absorbs the handful of fixed-count round-setup allocations the
# per-round geometry caches added (~3% on allocs/op, bought a ~2x ns/op
# win); a per-packet allocation regression scales far past 10% and
# still trips the gate.
BENCH_TOLERANCE ?= 1.10

bench-check:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -benchmem -benchtime $(BENCHTIME) \
		. ./internal/qlearn ./internal/deec \
		| $(GO) run ./cmd/qlecbench -out BENCH_PR7.json -against BENCH_PR2.json \
			-match 'Fig3aPacketDeliveryRate/QLEC' -tolerance $(BENCH_TOLERANCE)
	@echo wrote BENCH_PR7.json

# Regenerate every figure at full scale into ./figs (a few minutes).
figs:
	mkdir -p figs
	$(GO) run ./cmd/qlecfig -fig 3 -out figs | tee figs/fig3.txt
	$(GO) run ./cmd/qlecfig -fig 3a -k 11 | tee figs/fig3_k11.txt
	$(GO) run ./cmd/qlecfig -fig 4 -out figs | tee figs/fig4.txt
	$(GO) run ./cmd/qlecfig -fig ablation | tee figs/ablation.txt

# Observability demo: boot qlecd with Prometheus metrics and pprof
# enabled, submit a quick Figure-3 sweep plus a single QLEC run against
# it, then snapshot the exposition and the per-job Chrome traces under
# figs/. Open the trace JSON at https://ui.perfetto.dev (or
# chrome://tracing); point a Prometheus scrape at /metrics for the live
# version of the snapshot. See README "Observability".
OBS_ADDR ?= 127.0.0.1:8089
obs-demo:
	mkdir -p figs
	$(GO) build -o figs/.qlecd-demo ./cmd/qlecd
	@set -e; \
	figs/.qlecd-demo -addr $(OBS_ADDR) -pprof -data-dir '' -log-format json >figs/obs-demo-qlecd.log 2>&1 & \
	QLECD=$$!; trap "kill $$QLECD 2>/dev/null" EXIT INT TERM; \
	until curl -sf http://$(OBS_ADDR)/healthz >/dev/null 2>&1; do sleep 0.2; done; \
	curl -s http://$(OBS_ADDR)/version; echo; \
	ONE=$$(curl -s http://$(OBS_ADDR)/v1/jobs -d '{"kind":"one","protocols":["QLEC"],"lambda":4,"seed":1,"config":{"N":30,"Side":120,"K":3,"Rounds":20,"InitialEnergy":5,"Lambdas":[4],"Seeds":[1]}}' \
		| sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'); \
	FIG3=$$(curl -s http://$(OBS_ADDR)/v1/jobs -d '{"kind":"fig3","protocols":["QLEC","FCM","k-means"],"config":{"N":30,"Side":120,"K":3,"Rounds":5,"InitialEnergy":5,"Lambdas":[4,2],"Seeds":[1]}}' \
		| sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'); \
	echo "jobs: one=$$ONE fig3=$$FIG3"; \
	for J in $$ONE $$FIG3; do \
		while curl -s http://$(OBS_ADDR)/v1/jobs/$$J | grep -Eq '"state": *"(queued|running)"'; do sleep 0.3; done; \
	done; \
	curl -s http://$(OBS_ADDR)/v1/jobs/$$ONE/trace  >figs/obs-demo-trace-run.json; \
	curl -s http://$(OBS_ADDR)/v1/jobs/$$FIG3/trace >figs/obs-demo-trace-fig3.json; \
	curl -s http://$(OBS_ADDR)/metrics >figs/obs-demo-metrics.txt; \
	echo "wrote figs/obs-demo-trace-{run,fig3}.json and figs/obs-demo-metrics.txt"

# Flight-recorder demo: record two identically-seeded runs with the
# audit recorder on, prove their ledger/decision streams are
# bit-identical with `qlecaudit diff`, and leave the conservation
# report under figs/. The report exits non-zero if double-entry energy
# conservation is violated, so this target is also the CI guard for
# the recorder's invariants. See README "Auditing a run".
audit-demo:
	mkdir -p figs
	$(GO) run ./cmd/qlecsim -n 50 -rounds 20 -seed 7 -quiet -audit figs/audit-a.json
	$(GO) run ./cmd/qlecsim -n 50 -rounds 20 -seed 7 -quiet -audit figs/audit-b.json
	$(GO) run ./cmd/qlecaudit diff figs/audit-a.json figs/audit-b.json
	$(GO) run ./cmd/qlecaudit report figs/audit-a.json | tee figs/audit-report.txt
	@echo "wrote figs/audit-{a,b}.json and figs/audit-report.txt"

# Tournament smoke: a tiny scenario matrix over three registered
# protocols must produce a ranked report with one row per entrant.
# Guards the registry → tournament pipeline end to end (factory lookup,
# alias canonicalization, endurance leg, ranking). See README
# "Protocol tournament".
tournament-demo:
	@set -e; \
	OUT=$$($(GO) run ./cmd/qlecsim -tournament -n 24 -k 3 -rounds 3 -maxrounds 120 \
		-protocols "QLEC,kmeans,tdeec" -quiet); \
	echo "$$OUT"; \
	for P in QLEC k-means T-DEEC; do \
		echo "$$OUT" | grep -q "$$P" || { echo "tournament-demo: missing row for $$P" >&2; exit 1; }; \
	done; \
	echo "$$OUT" | grep -q "^1 " || { echo "tournament-demo: no rank-1 row" >&2; exit 1; }

# Fleet end-to-end guard: boot three race-built qlecd processes as a
# fleet, submit a batch through one of them, kill a peer after it has
# stolen work, and require the batch to finish with zero failed configs
# and an empty cell pool — the lease-expiry path must re-pool the dead
# peer's cells. Any data race crashes a daemon and fails the target.
# Before the kill, the observability surface is checked mid-batch: the
# federated /metrics/federate scrape must pass the exposition linter
# (qlecstat -check), a fleet-wide CPU capture through qlecprof must
# return non-empty profiles from at least two peers (the newest is
# saved to figs/fleet-profile.pprof and uploaded as a CI artifact), and
# the batch's merged Chrome trace — saved to figs/fleet-trace.json and
# uploaded as a CI artifact — must span at least two daemon lanes
# (qlectrace -chrome), proving cross-peer trace propagation through a
# real steal. See README "Observing a fleet"/"Profiling a fleet" and
# DESIGN.md §14-§16.
FLEET_HOST ?= 127.0.0.1
FLEET_P1 ?= 8181
FLEET_P2 ?= 8182
FLEET_P3 ?= 8183
fleet-e2e:
	mkdir -p figs
	$(GO) build -race -o figs/.qlecd-fleet ./cmd/qlecd
	$(GO) build -o figs/.qlecstat-fleet ./cmd/qlecstat
	$(GO) build -o figs/.qlectrace-fleet ./cmd/qlectrace
	$(GO) build -o figs/.qlecprof-fleet ./cmd/qlecprof
	@set -e; \
	DATA=$$(mktemp -d); trap 'kill $$P1 $$P2 $$P3 2>/dev/null || true; rm -rf $$DATA' EXIT INT TERM; \
	U1=http://$(FLEET_HOST):$(FLEET_P1); U2=http://$(FLEET_HOST):$(FLEET_P2); U3=http://$(FLEET_HOST):$(FLEET_P3); \
	figs/.qlecd-fleet -addr $(FLEET_HOST):$(FLEET_P1) -data-dir $$DATA/n1 -workers 1 -cell-workers 1 -lease-ttl 2s -self $$U1 >$$DATA/n1.log 2>&1 & P1=$$!; \
	figs/.qlecd-fleet -addr $(FLEET_HOST):$(FLEET_P2) -data-dir $$DATA/n2 -lease-ttl 2s -self $$U2 -join $$U1 >$$DATA/n2.log 2>&1 & P2=$$!; \
	figs/.qlecd-fleet -addr $(FLEET_HOST):$(FLEET_P3) -data-dir $$DATA/n3 -lease-ttl 2s -self $$U3 -join $$U1 >$$DATA/n3.log 2>&1 & P3=$$!; \
	for U in $$U1 $$U2 $$U3; do until curl -sf $$U/readyz >/dev/null 2>&1; do sleep 0.2; done; done; \
	until [ "$$(curl -s $$U1/v1/fleet | grep -c '"ready": *true')" = 3 ]; do sleep 0.2; done; \
	echo "fleet-e2e: 3 peers ready"; \
	B=$$(curl -s $$U1/v1/batches -d '{"requests":[ \
		{"kind":"fig3","protocols":["QLEC"],"config":{"N":30,"Side":120,"K":3,"Rounds":60,"InitialEnergy":5,"Lambdas":[1,2,4,8],"Seeds":[1,2,3]}}, \
		{"kind":"fig3","protocols":["FCM"],"config":{"N":30,"Side":120,"K":3,"Rounds":60,"InitialEnergy":5,"Lambdas":[1,2,4,8],"Seeds":[1,2,3]}}, \
		{"kind":"one","protocols":["QLEC"],"lambda":4,"seed":9,"config":{"N":30,"Side":120,"K":3,"Rounds":40,"InitialEnergy":5,"Lambdas":[4],"Seeds":[9]}} \
	]}' | sed -n 's/.*"id": *"\(b[0-9]*\)".*/\1/p'); \
	test -n "$$B" || { echo "fleet-e2e: batch submission failed" >&2; cat $$DATA/n1.log; exit 1; }; \
	echo "fleet-e2e: batch $$B submitted (25 cells across 3 configs)"; \
	STOLE=; for i in $$(seq 1 200); do \
		if curl -s $$U3/metrics.json | grep -q '"cellsStolen": *[1-9]'; then STOLE=1; break; fi; sleep 0.1; \
	done; \
	test -n "$$STOLE" || { echo "fleet-e2e: peer 3 never stole a cell" >&2; cat $$DATA/n3.log; exit 1; }; \
	echo "fleet-e2e: peer 3 stole work; checking observability mid-batch"; \
	figs/.qlecstat-fleet -addr $$U1 -check || { echo "fleet-e2e: federated scrape failed lint" >&2; exit 1; }; \
	figs/.qlecprof-fleet capture -addr $$U1 -fleet -kind cpu -seconds 1 -min 2 \
		|| { echo "fleet-e2e: fleet CPU capture did not cover 2 peers" >&2; exit 1; }; \
	figs/.qlecprof-fleet fetch -addr $$U1 -id latest -o figs/fleet-profile.pprof \
		|| { echo "fleet-e2e: profile fetch failed" >&2; exit 1; }; \
	test -s figs/fleet-profile.pprof || { echo "fleet-e2e: fetched profile is empty" >&2; exit 1; }; \
	echo "fleet-e2e: mid-batch CPU profiles captured on >=2 peers (figs/fleet-profile.pprof)"; \
	TRACE_OK=; for i in $$(seq 1 150); do \
		curl -s $$U1/v1/batches/$$B/trace > figs/fleet-trace.json; \
		if figs/.qlectrace-fleet -chrome figs/fleet-trace.json 2>/dev/null | grep -Eq '^lanes: ([2-9]|[1-9][0-9]+)$$'; then TRACE_OK=1; break; fi; \
		sleep 0.2; \
	done; \
	test -n "$$TRACE_OK" || { echo "fleet-e2e: merged batch trace never spanned 2 daemons" >&2; figs/.qlectrace-fleet -chrome figs/fleet-trace.json || true; exit 1; }; \
	echo "fleet-e2e: merged trace spans >=2 daemon lanes (figs/fleet-trace.json); killing peer 3"; \
	kill -9 $$P3; \
	STATE=; for i in $$(seq 1 300); do \
		STATE=$$(curl -s $$U1/v1/batches); \
		echo "$$STATE" | grep -q '"state": *"done"' && break; \
		sleep 0.2; \
	done; \
	echo "$$STATE" | grep -q '"state": *"done"' || { echo "fleet-e2e: batch never finished" >&2; cat $$DATA/n1.log; exit 1; }; \
	echo "$$STATE" | grep -q '"failed": *0' || { echo "fleet-e2e: configs failed after peer kill" >&2; echo "$$STATE"; cat $$DATA/n1.log; exit 1; }; \
	POOL=$$(curl -s $$U1/v1/fleet); \
	echo "$$POOL" | grep -q '"cellsPending": *0' || { echo "fleet-e2e: cells left pending" >&2; echo "$$POOL"; exit 1; }; \
	echo "$$POOL" | grep -q '"cellsLeased": *0' || { echo "fleet-e2e: cells left leased" >&2; echo "$$POOL"; exit 1; }; \
	echo "fleet-e2e: batch $$B completed with no lost cells after the peer kill"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/underwater
	$(GO) run ./examples/mountain
	$(GO) run ./examples/largescale -quick
	$(GO) run ./examples/harsh

clean:
	rm -rf figs test_output.txt bench_output.txt
