// Quickstart: run QLEC once under the paper's settings (100 nodes in a
// 200×200×200 cube, 5 J each, 20 rounds) and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"qlec"
	"qlec/internal/sim"
)

func main() {
	// DefaultScenario is the paper's §5.1 setup: N=100, M=200, E0=5 J,
	// R=20 rounds, k=5 clusters, λ=4 s mean packet inter-arrival.
	scenario := qlec.DefaultScenario()

	// RunContext honours cancellation at round boundaries — a deadline
	// (or Ctrl-C wiring) stops the run and still returns the partial
	// result — and the observer streams per-round progress.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	scenario.Config.Observer = func(snap sim.RoundSnapshot) {
		fmt.Fprintf(os.Stderr, "\rround %d: %d alive, %.2f J spent", snap.Round+1, snap.Alive, float64(snap.EnergySoFar))
		if snap.Done {
			fmt.Fprintln(os.Stderr)
		}
	}

	res, err := qlec.RunContext(ctx, scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol:            %s\n", res.Protocol)
	fmt.Printf("rounds:              %d\n", res.Rounds)
	fmt.Printf("packets generated:   %d\n", res.Generated)
	fmt.Printf("packet delivery rate %.4f\n", res.PDR())
	fmt.Printf("total energy:        %.3f J of %s initial\n", float64(res.TotalEnergy), "500 J")
	fmt.Printf("mean access latency: %.4f s\n", res.Access.Mean)
	fmt.Printf("mean hops:           %.2f\n", res.Hops.Mean)

	// Compare against the paper's baselines at the same traffic level.
	rows, err := qlec.Compare(scenario, qlec.Protocols())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprotocol    PDR      energy(J)  lifespan(rounds)")
	for _, r := range rows {
		fmt.Printf("%-10s  %.4f   %8.3f   %6.1f\n",
			r.Protocol, r.PDR.Mean, r.EnergyJ.Mean, r.Lifespan.Mean)
	}
}
