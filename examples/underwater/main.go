// Underwater monitoring: the paper's introduction motivates 3-D
// clustering with underwater deployments, where "node deployment is
// often not flat" and recharging is impractical. This example builds a
// water-column topology — sensors dense near the surface, sparse at
// depth, a surface buoy as base station — and compares QLEC against the
// baselines on delivery and lifespan.
//
//	go run ./examples/underwater
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"qlec"
	"qlec/internal/cli"
	"qlec/internal/rng"
)

func main() {
	const (
		sideX, sideY = 300.0, 300.0 // surface footprint (m)
		depth        = 200.0        // water column depth (m)
		nodes        = 120
	)
	// Deterministic placement: depth follows an exponential profile
	// (most sensors in the photic zone), surface position uniform.
	r := rng.NewNamed(7, "examples/underwater")
	var pos []qlec.Vec3
	var energies []float64
	for i := 0; i < nodes; i++ {
		z := depth * (1 - math.Exp(-3*r.Float64())) / (1 - math.Exp(-3))
		pos = append(pos, qlec.Vec3{
			X: r.Range(0, sideX),
			Y: r.Range(0, sideY),
			Z: depth - z, // Z=depth is the surface, Z=0 the seabed
		})
		// Deeper sensors carry bigger batteries (they are harder to
		// service), a common underwater provisioning rule.
		energies = append(energies, 4+4*(1-pos[i].Z/depth))
	}
	// The base station is a buoy at the surface center.
	topo, err := qlec.NewTopology(pos, energies, qlec.Vec3{X: sideX / 2, Y: sideY / 2, Z: depth})
	if err != nil {
		log.Fatal(err)
	}

	s := qlec.DefaultScenario()
	s.Config.Topology = topo
	s.Config.K = 6
	s.Config.Rounds = 20
	s.Config.Seeds = []uint64{1, 2, 3}
	s.Config.LifespanDeathLine = 2.0
	s.Config.LifespanMaxRounds = 1500
	s.Lambda = 3 // moderately busy acoustic channel

	fmt.Printf("underwater column: %d sensors over %gx%g m, %g m deep; buoy BS at surface\n\n",
		nodes, sideX, sideY, depth)

	// Ctrl-C cancels the comparison sweep at the next cell boundary.
	ctx, stop := cli.Context(0)
	defer stop()
	m := cli.NewMeter(os.Stderr)
	s.Config.Progress = m.SweepProgress("cells")
	rows, err := qlec.CompareContext(ctx, s, []qlec.Protocol{qlec.QLEC, qlec.FCM, qlec.KMeans, qlec.LEACH})
	m.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protocol      PDR      energy(J)  lifespan(rounds)  access-lat(s)")
	for _, row := range rows {
		fmt.Printf("%-12s  %.4f   %8.2f   %8.1f          %.4f\n",
			row.Protocol, row.PDR.Mean, row.EnergyJ.Mean, row.Lifespan.Mean, row.Access.Mean)
	}
	fmt.Println("\nexpected shape: QLEC sustains the longest lifespan by rotating head duty")
	fmt.Println("toward well-provisioned (deep, big-battery) sensors, while k-means pins")
	fmt.Println("head duty on whoever sits nearest each centroid until it browns out.")
}
