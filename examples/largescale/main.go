// Large-scale dataset experiment (§5.3): run QLEC over the synthetic
// Global-Power-Plant-style dataset (2896 nodes, k_opt = 272) and verify
// the paper's Figure 4 claim that energy consumption spreads evenly
// across the network.
//
//	go run ./examples/largescale          # full 2896-node run
//	go run ./examples/largescale -quick   # 500-node smoke run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"qlec"
	"qlec/internal/cli"
	"qlec/internal/experiment"
)

func main() {
	quick := flag.Bool("quick", false, "run a reduced 500-node version")
	timeout := flag.Duration("timeout", 0, "abort after this long (0 = no limit)")
	flag.Parse()

	// Ctrl-C (or -timeout) cancels the run at the next round boundary.
	ctx, stop := cli.Context(*timeout)
	defer stop()

	cfg := experiment.PaperFig4Config()
	if *quick {
		cfg.Synth.N = 500
		cfg.K = 40
		cfg.Rounds = 5
	}
	fmt.Printf("large-scale run: %d nodes, k=%d, %d rounds\n\n", cfg.Synth.N, cfg.K, cfg.Rounds)

	start := time.Now()
	m := cli.NewMeter(os.Stderr)
	cfg.Progress = m.SweepProgress("replicates")
	res, err := qlec.ReproduceFigure4Context(ctx, cfg)
	m.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println(experiment.Fig4Summary(res))
	fmt.Println()
	hm := experiment.Fig4Heatmap(res, 72, 22)
	rendered, err := hm.RenderASCII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rendered)
	fmt.Println("the paper's claim: 'nodes with high energy consumption rate ... are")
	fmt.Println("evenly distributed in the network'. Low binned CV and Moran's I ≈ 0")
	fmt.Println("above quantify that evenness; hot rows concentrated in one region of")
	fmt.Println("the map would refute it.")
}
