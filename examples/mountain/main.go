// Mountainous terrain: the paper's other motivating 3-D scenario
// ("in many environments like mountainous areas ... node deployment is
// often not flat"). Sensors follow a synthetic ridge-and-valley surface;
// the base station sits in the central valley. The example runs the QLEC
// ablations to show what each design choice of §3.1 contributes.
//
//	go run ./examples/mountain
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"qlec"
	"qlec/internal/cli"
	"qlec/internal/rng"
)

// terrain returns the surface elevation at (x, y): two ridges with a
// valley between them.
func terrain(x, y, side float64) float64 {
	u := x / side
	v := y / side
	ridges := 60*math.Exp(-40*(u-0.25)*(u-0.25)) + 80*math.Exp(-30*(u-0.75)*(u-0.75))
	roll := 15 * math.Sin(4*math.Pi*v)
	return 20 + ridges + roll
}

func main() {
	const (
		side  = 250.0
		nodes = 150
	)
	r := rng.NewNamed(11, "examples/mountain")
	var pos []qlec.Vec3
	var energies []float64
	for i := 0; i < nodes; i++ {
		x := r.Range(0, side)
		y := r.Range(0, side)
		// Sensors sit on the surface with a little mast-height jitter.
		z := terrain(x, y, side) + r.Range(0, 3)
		pos = append(pos, qlec.Vec3{X: x, Y: y, Z: z})
		energies = append(energies, 5)
	}
	// The base station is in the central valley (u = 0.5).
	bs := qlec.Vec3{X: side / 2, Y: side / 2, Z: terrain(side/2, side/2, side) + 10}
	topo, err := qlec.NewTopology(pos, energies, bs)
	if err != nil {
		log.Fatal(err)
	}

	s := qlec.DefaultScenario()
	s.Config.Topology = topo
	s.Config.K = 8
	s.Config.Rounds = 20
	s.Config.Seeds = []uint64{1, 2, 3}
	s.Config.LifespanDeathLine = 1.0
	s.Config.LifespanMaxRounds = 2000
	s.Lambda = 4 // steady monitoring traffic

	fmt.Printf("mountain deployment: %d sensors on a %gx%g m ridge-and-valley surface\n", nodes, side, side)
	fmt.Printf("base station in the central valley at %v\n\n", bs)

	// The ablation ladder: full QLEC, QLEC without the Eq. (4) energy
	// floor, without Algorithm 3 redundancy reduction, without
	// Q-learning, and classic LEACH as the floor.
	ladder := []qlec.Protocol{
		qlec.QLEC, qlec.QLECNoFloor, qlec.QLECNoRR, qlec.DEECNearest, qlec.LEACH,
	}
	// Ctrl-C cancels the ablation sweep at the next cell boundary.
	ctx, stop := cli.Context(0)
	defer stop()
	m := cli.NewMeter(os.Stderr)
	s.Config.Progress = m.SweepProgress("cells")
	rows, err := qlec.CompareContext(ctx, s, ladder)
	m.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("variant          PDR      energy(J)  lifespan(rounds)")
	for _, row := range rows {
		fmt.Printf("%-15s  %.4f   %8.2f   %8.1f\n",
			row.Protocol, row.PDR.Mean, row.EnergyJ.Mean, row.Lifespan.Mean)
	}
	fmt.Println("\nexpected shape: energy-blind LEACH burns the most energy and dies")
	fmt.Println("first; the DEEC-based variants cluster together on this homogeneous,")
	fmt.Println("moderate-load terrain — the §3.1 improvements pay off mainly under")
	fmt.Println("congestion and heterogeneous batteries (see examples/underwater and")
	fmt.Println("the ablation benchmarks).")
}
