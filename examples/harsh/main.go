// Harsh environment: the paper's abstract promises energy-efficient
// clustering for deployments where "communication between nodes ... is
// more complicated and restricted with the environment". This example
// turns on all three environmental stressors the simulator models —
// persistent per-link shadowing (some links are just bad), channel
// contention (busy air interferes), and random-waypoint mobility (the
// §3.1 motivation for per-round reselection) — and shows where QLEC's
// ACK-driven link learning separates from static assignments.
//
//	go run ./examples/harsh
package main

import (
	"fmt"
	"log"
	"os"

	"qlec"
	"qlec/internal/cli"
)

func main() {
	// Ctrl-C cancels the comparison sweep at the next cell boundary.
	ctx, stop := cli.Context(0)
	defer stop()

	s := qlec.DefaultScenario()
	s.Config.Rounds = 15
	s.Config.K = 8 // near the deployment's true k_opt; see EXPERIMENTS.md
	s.Config.Seeds = []uint64{1, 2, 3}
	s.Config.LifespanDeathLine = 2.5
	s.Config.LifespanMaxRounds = 600
	s.Lambda = 3

	// The harsh environment.
	s.Config.Sim.ShadowSigma = 0.9     // heavy multipath shadowing
	s.Config.Sim.ContentionGamma = 0.1 // interference on busy air
	s.Config.Sim.MobilitySpeedMin = 1  // slow drift (m/s)
	s.Config.Sim.MobilitySpeedMax = 3
	s.Config.Sim.MobilityPause = 30

	fmt.Println("harsh 3-D environment: shadowing σ=0.9, contention γ=0.1, mobility 1–3 m/s")
	fmt.Println()

	m := cli.NewMeter(os.Stderr)
	s.Config.Progress = m.SweepProgress("cells")
	rows, err := qlec.CompareContext(ctx, s, []qlec.Protocol{
		qlec.QLEC, qlec.DEECNearest, qlec.KMeans, qlec.LEACH,
	})
	m.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protocol       PDR      energy(J)  lifespan(rounds)")
	for _, r := range rows {
		fmt.Printf("%-13s  %.4f   %8.2f   %8.1f\n",
			r.Protocol, r.PDR.Mean, r.EnergyJ.Mean, r.Lifespan.Mean)
	}
	fmt.Println()
	fmt.Println("expected shape: shadowing gives QLEC's link estimator persistent bad")
	fmt.Println("links to learn and avoid, so the gap over DEEC-nearest (same heads,")
	fmt.Println("no learning) isolates the paper's Data Transmission Phase; k-means")
	fmt.Println("cannot react to links at all, and mobility keeps invalidating its")
	fmt.Println("centroid geometry.")
}
