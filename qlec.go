// Package qlec is a from-scratch Go reproduction of "QLEC: A
// Machine-Learning-Based Energy-Efficient Clustering Algorithm to Prolong
// Network Lifespan for IoT in High-Dimensional Space" (Li, Huang, Gao,
// Wu, Chen — ICPP 2019).
//
// The package is the public facade over the full reproduction stack:
//
//   - the QLEC protocol itself (improved-DEEC cluster-head selection plus
//     Q-learning packet routing),
//   - the baselines it is evaluated against (an FCM-based hierarchical
//     scheme, classic k-means, classic LEACH),
//   - a discrete-event 3-D wireless-sensor-network simulator with the
//     first-order radio energy model, bounded head queues, link loss,
//     ACKs and retries,
//   - and the experiment harness regenerating every figure in the
//     paper's evaluation.
//
// # Quick start
//
//	cfg := qlec.DefaultScenario()
//	res, err := qlec.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("PDR %.3f, energy %.2f J\n", res.PDR(), float64(res.TotalEnergy))
//
// Compare protocols under the paper's settings:
//
//	table, err := qlec.Compare(qlec.DefaultScenario(), qlec.Protocols())
//
// Long runs take a context for timeouts and Ctrl-C cancellation, and an
// observer for live progress:
//
//	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
//	defer cancel()
//	s := qlec.DefaultScenario()
//	s.Config.Observer = func(snap sim.RoundSnapshot) {
//		fmt.Fprintf(os.Stderr, "\rround %d, %d alive", snap.Round, snap.Alive)
//	}
//	res, err := qlec.RunContext(ctx, s)
//
// Regenerate the paper's figures programmatically through
// ReproduceFigure3 and ReproduceFigure4, or from the command line with
// cmd/qlecfig.
package qlec

import (
	"context"
	"fmt"

	"qlec/internal/dataset"
	"qlec/internal/energy"
	"qlec/internal/experiment"
	"qlec/internal/geom"
	"qlec/internal/metrics"
	"qlec/internal/plot"
	"qlec/internal/stats"
)

// Protocol identifies one of the implemented protocols.
type Protocol = experiment.ProtocolID

// The available protocols: QLEC and the paper's baselines, the
// ablation variants used by the benchmark suite, and the
// heterogeneity-aware entrants of the tournament harness. The full
// roster — including aliases and default parameters — lives in the
// protocol registry; AllProtocols enumerates it.
const (
	QLEC        = experiment.QLEC
	FCM         = experiment.FCM
	KMeans      = experiment.KMeans
	LEACH       = experiment.LEACH
	DEECNearest = experiment.DEECNearest
	QLECNoFloor = experiment.QLECNoFloor
	QLECNoRR    = experiment.QLECNoRR
	DEECPlain   = experiment.DEECPlain
	Direct      = experiment.Direct
	TDEEC       = experiment.TDEEC
	QLEACH      = experiment.QLEACH
)

// Protocols returns the three protocols of the paper's Figure 3.
func Protocols() []Protocol { return experiment.PaperProtocols() }

// AllProtocols returns every implemented protocol, ablations included.
func AllProtocols() []Protocol { return experiment.AllProtocols() }

// Scenario is a runnable experiment configuration. The zero value is not
// valid; start from DefaultScenario.
type Scenario struct {
	// Config is the underlying experiment configuration (deployment,
	// sweep, seeds, radio constants). See experiment.Config.
	Config experiment.Config
	// Protocol to run for single-run entry points.
	Protocol Protocol
	// Lambda is the traffic intensity (mean packet inter-arrival seconds
	// per node) for single runs.
	Lambda float64
	// Seed for single runs.
	Seed uint64
	// MeasureLifespan switches single runs to the death-line/stop-on-
	// death methodology of Figure 3(c).
	MeasureLifespan bool
}

// DefaultScenario returns the paper's §5.1 setup with QLEC selected.
func DefaultScenario() Scenario {
	return Scenario{
		Config:   experiment.PaperConfig(),
		Protocol: QLEC,
		Lambda:   4,
		Seed:     1,
	}
}

// Result re-exports the simulation result type.
type Result = metrics.Result

// Run executes a single simulation for the scenario's protocol. It is
// RunContext with context.Background().
func Run(s Scenario) (*Result, error) {
	return RunContext(context.Background(), s)
}

// RunContext executes a single simulation for the scenario's protocol.
// Cancelling ctx stops the simulation at the next round boundary and
// returns the partial result accumulated so far alongside ctx's error.
// Set Scenario.Config.Observer for per-round progress.
func RunContext(ctx context.Context, s Scenario) (*Result, error) {
	return s.Config.RunOne(ctx, s.Protocol, s.Lambda, s.Seed, s.MeasureLifespan)
}

// ComparisonRow is one protocol's aggregate under Compare.
type ComparisonRow struct {
	Protocol Protocol
	PDR      stats.Summary
	EnergyJ  stats.Summary
	Lifespan stats.Summary
	// Latency is end-to-end delivery latency (round-length dominated for
	// hold-and-burst protocols); Access is member→head acceptance
	// latency, the cross-protocol-comparable component.
	Latency stats.Summary
	Access  stats.Summary
}

// Compare runs every listed protocol at the scenario's λ across the
// configured seeds and returns per-protocol aggregates (fixed-round runs
// for PDR/energy/latency, death-line runs for lifespan). It is
// CompareContext with context.Background().
func Compare(s Scenario, protocols []Protocol) ([]ComparisonRow, error) {
	return CompareContext(context.Background(), s, protocols)
}

// CompareContext is Compare with cancellation: the per-cell runs fan out
// through the bounded runner (Scenario.Config.Workers, Progress) and a
// cancelled ctx stops launching cells and returns promptly with ctx's
// error.
func CompareContext(ctx context.Context, s Scenario, protocols []Protocol) ([]ComparisonRow, error) {
	if len(protocols) == 0 {
		return nil, fmt.Errorf("qlec: no protocols to compare")
	}
	cfg := s.Config
	cfg.Lambdas = []float64{s.Lambda}
	sweep, err := cfg.RunFig3(ctx, protocols)
	if err != nil {
		return nil, err
	}
	rows := make([]ComparisonRow, len(sweep))
	for i, sr := range sweep {
		p := sr.Points[0]
		rows[i] = ComparisonRow{
			Protocol: sr.Protocol,
			PDR:      p.PDR,
			EnergyJ:  p.EnergyJ,
			Lifespan: p.Lifespan,
			Latency:  p.Latency,
			Access:   p.Access,
		}
	}
	return rows, nil
}

// Figure3 bundles the three panels of the paper's Figure 3 (plus the
// latency series the paper claims but does not plot).
type Figure3 struct {
	Sweep   []experiment.SweepResult
	PDR     *plot.Chart
	Energy  *plot.Chart
	Life    *plot.Chart
	Latency *plot.Chart
}

// ReproduceFigure3 runs the full λ sweep for the given protocols (nil
// means the paper's three) and assembles the panels. It is
// ReproduceFigure3Context with context.Background().
func ReproduceFigure3(cfg experiment.Config, protocols []Protocol) (*Figure3, error) {
	return ReproduceFigure3Context(context.Background(), cfg, protocols)
}

// ReproduceFigure3Context is ReproduceFigure3 with cancellation and, via
// cfg.Workers/cfg.Progress, bounded parallelism and sweep progress.
func ReproduceFigure3Context(ctx context.Context, cfg experiment.Config, protocols []Protocol) (*Figure3, error) {
	if protocols == nil {
		protocols = Protocols()
	}
	sweep, err := cfg.RunFig3(ctx, protocols)
	if err != nil {
		return nil, err
	}
	f := &Figure3{Sweep: sweep}
	if f.PDR, err = experiment.Fig3aChart(sweep); err != nil {
		return nil, err
	}
	if f.Energy, err = experiment.Fig3bChart(sweep); err != nil {
		return nil, err
	}
	if f.Life, err = experiment.Fig3cChart(sweep); err != nil {
		return nil, err
	}
	if f.Latency, err = experiment.LatencyChart(sweep); err != nil {
		return nil, err
	}
	return f, nil
}

// ReproduceFigure4 runs the large-scale dataset experiment (§5.3). It is
// ReproduceFigure4Context with context.Background().
func ReproduceFigure4(cfg experiment.Fig4Config) (*experiment.Fig4Result, error) {
	return ReproduceFigure4Context(context.Background(), cfg)
}

// ReproduceFigure4Context is ReproduceFigure4 with cancellation; with
// cfg.Seeds set the replicates run in parallel through the bounded
// runner.
func ReproduceFigure4Context(ctx context.Context, cfg experiment.Fig4Config) (*experiment.Fig4Result, error) {
	return experiment.RunFig4(ctx, cfg)
}

// Vec3 is a point in 3-D space (meters).
type Vec3 = geom.Vec3

// Topology is an explicit deployment: node positions with per-node
// initial energies, a bounding box and a base-station position. Use it
// for non-uniform scenarios — underwater columns, terrain-following
// fields, real datasets — via Scenario.Config.Topology.
type Topology = dataset.Dataset

// NewTopology builds a Topology from parallel position/energy slices.
// The bounding box is grown to contain every node and the base station.
func NewTopology(positions []Vec3, energiesJ []float64, bs Vec3) (*Topology, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("qlec: empty topology")
	}
	if len(positions) != len(energiesJ) {
		return nil, fmt.Errorf("qlec: %d positions but %d energies", len(positions), len(energiesJ))
	}
	lo, hi := bs, bs
	grow := func(p Vec3) {
		if p.X < lo.X {
			lo.X = p.X
		}
		if p.Y < lo.Y {
			lo.Y = p.Y
		}
		if p.Z < lo.Z {
			lo.Z = p.Z
		}
		if p.X > hi.X {
			hi.X = p.X
		}
		if p.Y > hi.Y {
			hi.Y = p.Y
		}
		if p.Z > hi.Z {
			hi.Z = p.Z
		}
	}
	for _, p := range positions {
		grow(p)
	}
	// Pad so the box has positive extent on every axis even for planar
	// deployments.
	const pad = 1.0
	lo = lo.Sub(Vec3{X: pad, Y: pad, Z: pad})
	hi = hi.Add(Vec3{X: pad, Y: pad, Z: pad})
	en := make([]energy.Joules, len(energiesJ))
	for i, e := range energiesJ {
		if e <= 0 {
			return nil, fmt.Errorf("qlec: node %d has non-positive energy %v", i, e)
		}
		en[i] = energy.Joules(e)
	}
	t := &Topology{
		Positions: append([]Vec3(nil), positions...),
		Energies:  en,
		Box:       geom.AABB{Min: lo, Max: hi},
		BS:        bs,
	}
	return t, t.Validate()
}

// OptimalClusterCount exposes Theorem 1: the energy-optimal k for a
// network of n nodes in a cube of the given side with mean node→BS
// distance dToBS, under the default radio model.
func OptimalClusterCount(n int, side, dToBS float64) float64 {
	return energy.DefaultModel().OptimalClusterCount(n, side, dToBS)
}
