package qlec

import (
	"context"
	"testing"

	"qlec/internal/experiment"
)

// goldenRun pins the exact end-to-end output of a short Table 2 run —
// every float compared with ==, not a tolerance. These values were
// captured from the tree at the time the hot-path flattening landed and
// enforce the determinism-preservation rule of DESIGN.md §8: an
// optimization that changes any expression's rounding, any RNG stream's
// consumption order, or any iteration order shows up here as a hard
// failure, not a silent drift of the paper's curves.
//
// To regenerate after an INTENTIONAL behaviour change (never for a
// performance change), print the fields of RunOne under this exact
// configuration with %.17g and paste them below; %.17g round-trips
// float64 exactly.
type goldenRun struct {
	id        experiment.ProtocolID
	lambda    float64
	generated int
	delivered int
	dropped   [4]int
	energy    float64
	latency   float64
}

var goldenRuns = []goldenRun{
	{experiment.QLEC, 8, 1221, 1221, [4]int{0, 0, 0, 0}, 1.3790371812612059, 10.573950853840151},
	{experiment.QLEC, 2, 5014, 4776, [4]int{13, 225, 0, 0}, 6.8022103887179997, 14.08728947564582},
	{experiment.FCM, 8, 1221, 1220, [4]int{1, 0, 0, 0}, 1.4971597508597854, 0.31025494139038839},
	{experiment.FCM, 2, 5014, 2748, [4]int{134, 2132, 0, 0}, 11.178108417996105, 2.5080345359835881},
	{experiment.KMeans, 8, 1221, 1221, [4]int{0, 0, 0, 0}, 1.2042278868149177, 10.533533301995444},
	{experiment.KMeans, 2, 5014, 4738, [4]int{15, 261, 0, 0}, 5.3382218422220218, 14.192807746751615},
}

func TestGoldenMetricsTable2Defaults(t *testing.T) {
	cfg := experiment.PaperConfig()
	cfg.Rounds = 5
	cfg.Seeds = []uint64{1}
	for _, g := range goldenRuns {
		g := g
		t.Run(string(g.id), func(t *testing.T) {
			res, err := cfg.RunOne(context.Background(), g.id, g.lambda, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.Generated != g.generated {
				t.Errorf("λ=%g generated = %d, want %d", g.lambda, res.Generated, g.generated)
			}
			if res.Delivered != g.delivered {
				t.Errorf("λ=%g delivered = %d, want %d", g.lambda, res.Delivered, g.delivered)
			}
			if res.Dropped != g.dropped {
				t.Errorf("λ=%g dropped = %v, want %v", g.lambda, res.Dropped, g.dropped)
			}
			if float64(res.TotalEnergy) != g.energy {
				t.Errorf("λ=%g energy = %.17g, want %.17g", g.lambda, float64(res.TotalEnergy), g.energy)
			}
			if res.Latency.Mean != g.latency {
				t.Errorf("λ=%g latency mean = %.17g, want %.17g", g.lambda, res.Latency.Mean, g.latency)
			}
		})
	}
}
