package qlec

// Always-on miniature reproduction of the paper's headline shapes.
// The full-scale figures live in cmd/qlecfig and EXPERIMENTS.md; these
// tests assert the *orderings* the paper reports on a reduced but
// deterministic configuration, so a regression that flips a conclusion
// fails the ordinary test suite, not just a manual figure run.

import (
	"context"
	"testing"

	"qlec/internal/experiment"
)

// shapeConfig: paper deployment, fewer rounds/seeds, k at the
// deployment's true k_opt ≈ 11 where all of the paper's orderings hold
// (see EXPERIMENTS.md on the k=5 caveats).
func shapeConfig() experiment.Config {
	c := experiment.PaperConfig()
	c.K = 11
	c.Rounds = 8
	c.Seeds = []uint64{1, 2, 3}
	c.LifespanDeathLine = 4.5
	c.LifespanMaxRounds = 400
	return c
}

func meanPDR(t *testing.T, c experiment.Config, id experiment.ProtocolID, lambda float64) float64 {
	t.Helper()
	total := 0.0
	for _, seed := range c.Seeds {
		res, err := c.RunOne(context.Background(), id, lambda, seed, false)
		if err != nil {
			t.Fatal(err)
		}
		total += res.PDR()
	}
	return total / float64(len(c.Seeds))
}

func meanLifespan(t *testing.T, c experiment.Config, id experiment.ProtocolID, lambda float64) float64 {
	t.Helper()
	total := 0.0
	for _, seed := range c.Seeds {
		res, err := c.RunOne(context.Background(), id, lambda, seed, true)
		if err != nil {
			t.Fatal(err)
		}
		ls := res.Lifespan
		if ls == 0 {
			ls = res.Rounds
		}
		total += float64(ls)
	}
	return total / float64(len(c.Seeds))
}

// Fig. 3(a): QLEC holds PDR ≈ 1 when idle; under congestion QLEC ≥
// k-means and both far above FCM.
func TestShapeFig3aPDROrdering(t *testing.T) {
	c := shapeConfig()
	if idle := meanPDR(t, c, experiment.QLEC, 8); idle < 0.995 {
		t.Fatalf("QLEC idle PDR = %v, paper reports ≈ 1", idle)
	}
	qlec := meanPDR(t, c, experiment.QLEC, 1.5)
	kmeans := meanPDR(t, c, experiment.KMeans, 1.5)
	fcm := meanPDR(t, c, experiment.FCM, 1.5)
	if qlec+0.005 < kmeans {
		t.Fatalf("congested PDR: QLEC %v below k-means %v", qlec, kmeans)
	}
	if fcm > kmeans-0.1 {
		t.Fatalf("FCM PDR %v not far below k-means %v (multi-hop loss missing)", fcm, kmeans)
	}
}

// Fig. 3(b): FCM is the most energy-hungry baseline (its relays pay
// Rx+Tx per fused packet).
func TestShapeFig3bFCMEnergyHighest(t *testing.T) {
	c := shapeConfig()
	energyOf := func(id experiment.ProtocolID) float64 {
		total := 0.0
		for _, seed := range c.Seeds {
			res, err := c.RunOne(context.Background(), id, 2, seed, false)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(res.TotalEnergy)
		}
		return total
	}
	fcm := energyOf(experiment.FCM)
	kmeans := energyOf(experiment.KMeans)
	if fcm <= kmeans {
		t.Fatalf("FCM energy %v not above k-means %v", fcm, kmeans)
	}
}

// Fig. 3(c): QLEC outlives both baselines.
func TestShapeFig3cLifespanOrdering(t *testing.T) {
	c := shapeConfig()
	qlec := meanLifespan(t, c, experiment.QLEC, 4)
	kmeans := meanLifespan(t, c, experiment.KMeans, 4)
	fcm := meanLifespan(t, c, experiment.FCM, 4)
	if qlec <= kmeans {
		t.Fatalf("lifespan: QLEC %v not above k-means %v", qlec, kmeans)
	}
	if qlec <= fcm {
		t.Fatalf("lifespan: QLEC %v not above FCM %v", qlec, fcm)
	}
}

// Fig. 4's evenness claim at miniature scale, including its mechanism:
// after a few rounds consumption concentrates on whoever served as head,
// but rotation spreads it — the Gini of per-node consumption *falls* as
// rounds accumulate and ends moderate.
func TestShapeFig4EvennessImprovesWithRotation(t *testing.T) {
	run := func(rounds int) *experiment.Fig4Result {
		cfg := experiment.PaperFig4Config()
		cfg.Synth.N = 400
		cfg.K = 30
		cfg.Rounds = rounds
		res, err := experiment.RunFig4(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	early := run(4)
	late := run(20)
	if late.Gini >= early.Gini {
		t.Fatalf("rotation failed to even out consumption: Gini %v → %v", early.Gini, late.Gini)
	}
	if late.Gini > 0.45 {
		t.Fatalf("consumption Gini %v after 20 rounds too concentrated for the evenness claim", late.Gini)
	}
	if late.MoranI > 0.5 {
		t.Fatalf("Moran's I %v indicates strong hot-spotting", late.MoranI)
	}
}
