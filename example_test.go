package qlec_test

// Runnable documentation examples for the public facade. The simulator
// is bit-deterministic per (seed, config), so the printed numbers double
// as a regression canary: if any component's random-draw order changes,
// these examples fail and the change must be acknowledged deliberately.

import (
	"fmt"
	"log"

	"qlec"
)

// ExampleRun shows the minimal happy path: the paper's §5.1 scenario,
// shrunk to 3 rounds for a fast, deterministic example.
func ExampleRun() {
	s := qlec.DefaultScenario()
	s.Config.Rounds = 3
	res, err := qlec.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol=%s rounds=%d generated=%d pdr=%.4f\n",
		res.Protocol, res.Rounds, res.Generated, res.PDR())
	// Output:
	// protocol=QLEC rounds=3 generated=1510 pdr=1.0000
}

// ExampleCompare runs QLEC against classic k-means on one small,
// deterministic configuration.
func ExampleCompare() {
	s := qlec.DefaultScenario()
	s.Config.Rounds = 3
	s.Config.Seeds = []uint64{1}
	s.Config.LifespanDeathLine = 4.95
	s.Config.LifespanMaxRounds = 60
	rows, err := qlec.Compare(s, []qlec.Protocol{qlec.QLEC, qlec.KMeans})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("%s pdr=%.4f\n", r.Protocol, r.PDR.Mean)
	}
	// Output:
	// QLEC pdr=1.0000
	// k-means pdr=1.0000
}

// ExampleNewTopology builds a tiny explicit deployment and runs QLEC
// over it.
func ExampleNewTopology() {
	var pos []qlec.Vec3
	var energies []float64
	for i := 0; i < 30; i++ {
		pos = append(pos, qlec.Vec3{
			X: float64(i%5) * 20,
			Y: float64(i/5) * 20,
			Z: float64(i%3) * 30,
		})
		energies = append(energies, 5)
	}
	topo, err := qlec.NewTopology(pos, energies, qlec.Vec3{X: 40, Y: 50, Z: 30})
	if err != nil {
		log.Fatal(err)
	}
	s := qlec.DefaultScenario()
	s.Config.Topology = topo
	s.Config.K = 3
	s.Config.Rounds = 2
	res, err := qlec.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nodes=%d delivered=%d of %d\n",
		len(res.ConsumptionRates), res.Delivered, res.Generated)
	// Output:
	// nodes=30 delivered=284 of 284
}

// ExampleOptimalClusterCount evaluates Theorem 1 for the paper's
// deployment parameters.
func ExampleOptimalClusterCount() {
	k := qlec.OptimalClusterCount(100, 200, 134)
	fmt.Printf("k_opt = %.2f\n", k)
	// Output:
	// k_opt = 5.01
}
