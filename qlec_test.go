package qlec

import (
	"context"
	"errors"
	"testing"

	"qlec/internal/experiment"
	"qlec/internal/sim"
)

// quickScenario shrinks the paper scenario for fast tests.
func quickScenario() Scenario {
	s := DefaultScenario()
	s.Config.Rounds = 3
	s.Config.Seeds = []uint64{1, 2}
	s.Config.Lambdas = []float64{6, 2}
	s.Config.LifespanDeathLine = 4.96
	s.Config.LifespanMaxRounds = 40
	return s
}

func TestRunQuickstart(t *testing.T) {
	res, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "QLEC" {
		t.Fatalf("protocol %q", res.Protocol)
	}
	if res.PDR() <= 0 || res.TotalEnergy <= 0 {
		t.Fatalf("degenerate result: PDR %v energy %v", res.PDR(), res.TotalEnergy)
	}
}

func TestRunEveryPublicProtocol(t *testing.T) {
	for _, p := range AllProtocols() {
		s := quickScenario()
		s.Protocol = p
		res, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Generated == 0 {
			t.Fatalf("%s: no traffic", p)
		}
	}
}

func TestCompare(t *testing.T) {
	s := quickScenario()
	rows, err := Compare(s, Protocols())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.PDR.N != 2 {
			t.Fatalf("%s: %d replicates", r.Protocol, r.PDR.N)
		}
		if r.Lifespan.Mean <= 0 {
			t.Fatalf("%s: lifespan %v", r.Protocol, r.Lifespan.Mean)
		}
	}
}

func TestCompareNoProtocols(t *testing.T) {
	if _, err := Compare(quickScenario(), nil); err == nil {
		t.Fatal("empty protocol list accepted")
	}
}

func TestReproduceFigure3Quick(t *testing.T) {
	s := quickScenario()
	f, err := ReproduceFigure3(s.Config, []Protocol{QLEC, KMeans})
	if err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]interface{ Validate() error }{
		"pdr": f.PDR, "energy": f.Energy, "life": f.Life, "latency": f.Latency,
	} {
		if err := ch.Validate(); err != nil {
			t.Fatalf("%s chart: %v", name, err)
		}
	}
	if len(f.Sweep) != 2 {
		t.Fatalf("sweep has %d protocols", len(f.Sweep))
	}
}

func TestReproduceFigure4Quick(t *testing.T) {
	cfg := experiment.PaperFig4Config()
	cfg.Synth.N = 250
	cfg.K = 16
	cfg.Rounds = 2
	res, err := ReproduceFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 16 || len(res.Field.Points) != 250 {
		t.Fatalf("unexpected figure-4 result shape: k=%d n=%d", res.K, len(res.Field.Points))
	}
}

func TestNewTopologyAndRun(t *testing.T) {
	// A small water-column style deployment.
	var pos []Vec3
	var en []float64
	for i := 0; i < 60; i++ {
		pos = append(pos, Vec3{
			X: float64(i%10) * 10,
			Y: float64((i/10)%6) * 10,
			Z: float64(i%4) * 25,
		})
		en = append(en, 5)
	}
	topo, err := NewTopology(pos, en, Vec3{X: 45, Y: 25, Z: 110})
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Box.Contains(topo.BS) {
		t.Fatal("box does not contain BS")
	}
	s := quickScenario()
	s.Config.Topology = topo
	s.Config.K = 4
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 || res.Delivered == 0 {
		t.Fatalf("custom topology run degenerate: gen %d del %d", res.Generated, res.Delivered)
	}
	if len(res.ConsumptionRates) != 60 {
		t.Fatalf("consumption rates for %d nodes", len(res.ConsumptionRates))
	}
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(nil, nil, Vec3{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := NewTopology([]Vec3{{}}, []float64{1, 2}, Vec3{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewTopology([]Vec3{{}}, []float64{0}, Vec3{}); err == nil {
		t.Fatal("zero energy accepted")
	}
}

func TestOptimalClusterCount(t *testing.T) {
	// Theorem 1 with the paper's parameters and d_toBS = 134 m rounds
	// to the paper's k_opt ≈ 5 (see DESIGN.md §6.2).
	k := OptimalClusterCount(100, 200, 134)
	if k < 4.5 || k >= 5.5 {
		t.Fatalf("k_opt = %v", k)
	}
}

func TestRunContextCancellation(t *testing.T) {
	s := quickScenario()
	s.Config.Rounds = 100
	ctx, cancel := context.WithCancel(context.Background())
	rounds := 0
	s.Config.Observer = func(snap sim.RoundSnapshot) {
		rounds++
		if snap.Round == 1 {
			cancel()
		}
	}
	res, err := RunContext(ctx, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res == nil || res.Rounds != 2 {
		t.Fatalf("partial result = %+v", res)
	}
	if rounds != 2 {
		t.Fatalf("observer saw %d rounds", rounds)
	}
}

func TestCompareContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareContext(ctx, quickScenario(), Protocols()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// Context facade entry points agree exactly with their Background
// wrappers.
func TestContextFacadeMatchesWrappers(t *testing.T) {
	s := quickScenario()
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if a.PDR() != b.PDR() || a.TotalEnergy != b.TotalEnergy || a.Generated != b.Generated {
		t.Fatal("RunContext diverged from Run")
	}
}
