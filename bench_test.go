// Benchmarks regenerating every table and figure of the paper's
// evaluation (ICPP 2019, §5), plus the analytic results of §3 and the
// ablations DESIGN.md calls out. Each benchmark runs a scaled but
// shape-preserving version of its experiment per iteration and reports
// the headline quantities through b.ReportMetric, so `go test -bench=.`
// doubles as the reproduction dashboard; cmd/qlecfig produces the
// full-scale figures.
//
// Index (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	BenchmarkTable2Defaults          — Table 2 parameter set, end to end
//	BenchmarkFig1NetworkConstruction — Fig. 1 clustered-network structure
//	BenchmarkFig2AgentEnvironmentLoop— Fig. 2 Q-learning interaction loop
//	BenchmarkFig3aPacketDeliveryRate — Fig. 3(a)
//	BenchmarkFig3bTotalEnergy        — Fig. 3(b)
//	BenchmarkFig3cLifespan           — Fig. 3(c)
//	BenchmarkFig4LargeScale          — Fig. 4
//	BenchmarkTheorem1OptimalK        — Theorem 1 vs brute-force argmin
//	BenchmarkLemma1MeanSqDist        — Lemma 1 Monte-Carlo check
//	BenchmarkRunningTimeOKX          — §4.3 O(kX): X to convergence vs k
//	BenchmarkAblation*               — §3.1 design choices in isolation
package qlec

import (
	"context"
	"fmt"
	"math"
	"testing"

	"qlec/internal/cluster"
	"qlec/internal/eecp"
	"qlec/internal/energy"
	"qlec/internal/experiment"
	"qlec/internal/geom"
	"qlec/internal/network"
	"qlec/internal/qlearn"
	"qlec/internal/rng"
	"qlec/internal/runner"
	"qlec/internal/sim"
)

// benchConfig is the scaled-down paper configuration used inside
// benchmark iterations: same topology and protocol stack, fewer rounds
// and one seed, so an iteration stays in the tens of milliseconds.
func benchConfig() experiment.Config {
	c := experiment.PaperConfig()
	c.Rounds = 5
	c.Seeds = []uint64{1}
	c.LifespanDeathLine = 4.9
	c.LifespanMaxRounds = 300
	return c
}

// BenchmarkTable2Defaults runs QLEC end to end under the exact Table 2
// parameter set (γ=0.95, ε_fs=10 pJ/bit/m², ε_mp=0.0013 pJ/bit/m⁴,
// α₁=β₁=0.05, α₂=β₂=1.05, 50 % compression, N=100, M=200, E0=5 J).
func BenchmarkTable2Defaults(b *testing.B) {
	cfg := benchConfig()
	var pdr, joules float64
	for i := 0; i < b.N; i++ {
		res, err := cfg.RunOne(context.Background(), experiment.QLEC, 4, uint64(i+1), false)
		if err != nil {
			b.Fatal(err)
		}
		pdr = res.PDR()
		joules = float64(res.TotalEnergy)
	}
	b.ReportMetric(pdr, "pdr")
	b.ReportMetric(joules, "J")
}

// BenchmarkFig1NetworkConstruction reproduces the structure of Figure 1:
// deploy N nodes in the cube, select heads, assign members to the
// nearest head.
func BenchmarkFig1NetworkConstruction(b *testing.B) {
	var heads int
	for i := 0; i < b.N; i++ {
		w, err := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5},
			rng.New(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		cfg := benchConfig()
		proto, err := cfg.BuildProtocol(experiment.QLEC, w, 20, 0, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		hs := proto.StartRound(0)
		a := cluster.AssignNearest(w, hs)
		heads = len(hs)
		_ = a
	}
	b.ReportMetric(float64(heads), "heads")
}

// BenchmarkFig2AgentEnvironmentLoop exercises the Figure 2 interaction
// loop in isolation: state → action (Decide) → environment outcome
// (Observe) → value update, per member per step.
func BenchmarkFig2AgentEnvironmentLoop(b *testing.B) {
	w, err := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	l, err := qlearn.NewLearner(w, energy.DefaultModel(), 4000, qlearn.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	heads := []int{10, 30, 50, 70, 90}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := i % 100
		if node%10 == 0 {
			node++
		}
		to := l.Decide(node, heads)
		l.Observe(node, to, r.Float64() < 0.95)
	}
	b.ReportMetric(float64(l.Updates())/float64(b.N), "updates/op")
}

// fig3Bench runs one (protocol, λ) cell per iteration and reports the
// requested metric. Sub-benchmarks mirror the paper's series.
func fig3Bench(b *testing.B, metric string) {
	for _, id := range experiment.PaperProtocols() {
		for _, lambda := range []float64{8, 2} {
			name := fmt.Sprintf("%s/lambda=%g", id, lambda)
			b.Run(name, func(b *testing.B) {
				cfg := benchConfig()
				var value float64
				for i := 0; i < b.N; i++ {
					lifespan := metric == "rounds"
					res, err := cfg.RunOne(context.Background(), id, lambda, uint64(i+1), lifespan)
					if err != nil {
						b.Fatal(err)
					}
					switch metric {
					case "pdr":
						value = res.PDR()
					case "J":
						value = float64(res.TotalEnergy)
					case "rounds":
						if res.Lifespan > 0 {
							value = float64(res.Lifespan)
						} else {
							value = float64(res.Rounds)
						}
					}
				}
				b.ReportMetric(value, metric)
			})
		}
	}
}

// BenchmarkFig3aPacketDeliveryRate regenerates Figure 3(a)'s series.
func BenchmarkFig3aPacketDeliveryRate(b *testing.B) { fig3Bench(b, "pdr") }

// BenchmarkFig3bTotalEnergy regenerates Figure 3(b)'s series.
func BenchmarkFig3bTotalEnergy(b *testing.B) { fig3Bench(b, "J") }

// BenchmarkFig3cLifespan regenerates Figure 3(c)'s series.
func BenchmarkFig3cLifespan(b *testing.B) { fig3Bench(b, "rounds") }

// BenchmarkFig4LargeScale regenerates Figure 4 at reduced scale per
// iteration (the full 2896-node run lives in cmd/qlecfig -fig 4) and
// reports the spatial-evenness statistics.
func BenchmarkFig4LargeScale(b *testing.B) {
	cfg := experiment.PaperFig4Config()
	cfg.Synth.N = 600
	cfg.K = 45
	cfg.Rounds = 3
	var cv, gini, moran float64
	for i := 0; i < b.N; i++ {
		cfg.Synth.Seed = uint64(2019 + i)
		res, err := experiment.RunFig4(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		cv, gini, moran = res.BinnedCV, res.Gini, res.MoranI
	}
	b.ReportMetric(cv, "binnedCV")
	b.ReportMetric(gini, "gini")
	b.ReportMetric(moran, "moranI")
}

// BenchmarkTheorem1OptimalK evaluates the closed form and cross-checks
// it against the brute-force argmin of Eq. (6) every iteration.
func BenchmarkTheorem1OptimalK(b *testing.B) {
	model := energy.DefaultModel()
	d := geom.ExpectedMeanDistCubeToCenter(200)
	var kopt float64
	var argmin int
	for i := 0; i < b.N; i++ {
		kopt = model.OptimalClusterCount(100, 200, d)
		best := math.Inf(1)
		for k := 1; k <= 100; k++ {
			if e := float64(model.RoundEnergyAtK(4000, 100, float64(k), 200, d)); e < best {
				best, argmin = e, k
			}
		}
	}
	if math.Abs(float64(argmin)-kopt) > 1.5 {
		b.Fatalf("closed form %v vs argmin %d", kopt, argmin)
	}
	b.ReportMetric(kopt, "k_opt")
	b.ReportMetric(float64(argmin), "argmin")
}

// BenchmarkLemma1MeanSqDist Monte-Carlo-checks Lemma 1's closed form for
// E[d²_toCH] each iteration.
func BenchmarkLemma1MeanSqDist(b *testing.B) {
	r := rng.New(3)
	const side, k = 200.0, 5
	closed := energy.ExpectedSqDistToCH(side, k)
	dc := geom.CoverageRadius(side, k)
	center := geom.Vec3{X: 100, Y: 100, Z: 100}
	var mc float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		const samples = 10000
		for s := 0; s < samples; s++ {
			sum += geom.SampleBall(r, center, dc).DistSq(center)
		}
		mc = sum / samples
	}
	if math.Abs(mc-closed)/closed > 0.1 {
		b.Fatalf("Monte Carlo %v vs closed form %v", mc, closed)
	}
	b.ReportMetric(mc, "E[d2]_mc")
	b.ReportMetric(closed, "E[d2]_closed")
}

// BenchmarkRunningTimeOKX measures §4.3's X — the number of V updates
// Q-learning needs to converge — as the cluster count k grows, backing
// the O(kX) running-time claim (Theorem 3).
func BenchmarkRunningTimeOKX(b *testing.B) {
	for _, k := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var x uint64
			for i := 0; i < b.N; i++ {
				w, err := network.Deploy(network.Deployment{N: 100, Side: 200, InitialEnergy: 5},
					rng.New(uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				l, err := qlearn.NewLearner(w, energy.DefaultModel(), 4000, qlearn.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				heads := make([]int, k)
				for j := range heads {
					heads[j] = j
				}
				for iter := 0; iter < 10000 && !l.Converged(1e-9); iter++ {
					for node := k; node < 100; node++ {
						to := l.Decide(node, heads)
						l.Observe(node, to, true)
					}
					for _, h := range heads {
						l.Observe(h, network.BSID, true)
						l.UpdateHeadValue(h)
					}
				}
				x = l.Updates()
			}
			b.ReportMetric(float64(x), "X_updates")
		})
	}
}

// ablationBench compares full QLEC against one disabled design choice
// under congestion, reporting both variants' PDR and lifespan.
func ablationBench(b *testing.B, variant experiment.ProtocolID) {
	cfg := benchConfig()
	cfg.K = 8 // rerouting needs alternative heads near k_opt; see EXPERIMENTS.md
	var fullPDR, variantPDR float64
	for i := 0; i < b.N; i++ {
		full, err := cfg.RunOne(context.Background(), experiment.QLEC, 1.5, uint64(i+1), false)
		if err != nil {
			b.Fatal(err)
		}
		abl, err := cfg.RunOne(context.Background(), variant, 1.5, uint64(i+1), false)
		if err != nil {
			b.Fatal(err)
		}
		fullPDR = full.PDR()
		variantPDR = abl.PDR()
	}
	b.ReportMetric(fullPDR, "pdr_full")
	b.ReportMetric(variantPDR, "pdr_ablated")
}

// BenchmarkAblationQLearning isolates the Data Transmission Phase:
// QLEC vs nearest-head routing on the same DEEC heads.
func BenchmarkAblationQLearning(b *testing.B) { ablationBench(b, experiment.DEECNearest) }

// BenchmarkAblationEnergyFloor isolates the Eq. (4) improvement.
func BenchmarkAblationEnergyFloor(b *testing.B) { ablationBench(b, experiment.QLECNoFloor) }

// BenchmarkAblationRedundancyReduction isolates Algorithm 3.
func BenchmarkAblationRedundancyReduction(b *testing.B) { ablationBench(b, experiment.QLECNoRR) }

// BenchmarkAblationLEACHBaseline positions classic LEACH under the same
// congestion for reference.
func BenchmarkAblationLEACHBaseline(b *testing.B) { ablationBench(b, experiment.LEACH) }

// BenchmarkHeterogeneousLifespan runs DEEC's original setting — a
// two-tier network with 20 % advanced nodes at 4× energy — and compares
// QLEC's lifespan against energy-blind LEACH. This is the regime the
// DEEC lineage was designed for: the energy-weighted lottery shifts
// head duty onto the advanced nodes, so the first normal node dies much
// later.
func BenchmarkHeterogeneousLifespan(b *testing.B) {
	cfg := benchConfig()
	cfg.AdvancedFraction = 0.2
	cfg.AdvancedFactor = 3
	cfg.LifespanDeathLine = 4.5
	cfg.LifespanMaxRounds = 500
	var qlecLife, leachLife float64
	for i := 0; i < b.N; i++ {
		q, err := cfg.RunOne(context.Background(), experiment.QLEC, 4, uint64(i+1), true)
		if err != nil {
			b.Fatal(err)
		}
		l, err := cfg.RunOne(context.Background(), experiment.LEACH, 4, uint64(i+1), true)
		if err != nil {
			b.Fatal(err)
		}
		qlecLife = lifespanOf(q.Lifespan, q.Rounds)
		leachLife = lifespanOf(l.Lifespan, l.Rounds)
	}
	b.ReportMetric(qlecLife, "rounds_qlec")
	b.ReportMetric(leachLife, "rounds_leach")
}

func lifespanOf(lifespan, rounds int) float64 {
	if lifespan > 0 {
		return float64(lifespan)
	}
	return float64(rounds)
}

// BenchmarkMobilityImpact runs QLEC static vs under random-waypoint
// mobility (the §3.1 motivation for per-round reselection) and under
// per-link shadowing, reporting delivery in each regime.
func BenchmarkMobilityImpact(b *testing.B) {
	run := func(i int, mut func(*sim.Config)) float64 {
		cfg := benchConfig()
		cfg.K = 8
		mut(&cfg.Sim)
		res, err := cfg.RunOne(context.Background(), experiment.QLEC, 4, uint64(i+1), false)
		if err != nil {
			b.Fatal(err)
		}
		return res.PDR()
	}
	var static, mobile, shadowed float64
	for i := 0; i < b.N; i++ {
		static = run(i, func(*sim.Config) {})
		mobile = run(i, func(c *sim.Config) {
			c.MobilitySpeedMin, c.MobilitySpeedMax = 2, 6
		})
		shadowed = run(i, func(c *sim.Config) { c.ShadowSigma = 0.8 })
	}
	b.ReportMetric(static, "pdr_static")
	b.ReportMetric(mobile, "pdr_mobile")
	b.ReportMetric(shadowed, "pdr_shadowed")
}

// BenchmarkCompressionSweep ablates Table 2's 50 % fusion ratio: the
// compression factor directly scales the head→BS burst (the multi-path
// d⁴ leg), so total energy falls as compression tightens.
func BenchmarkCompressionSweep(b *testing.B) {
	for _, ratio := range []float64{0.25, 0.5, 1.0} {
		b.Run(fmt.Sprintf("ratio=%g", ratio), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Sim.Compression = ratio
			var joules float64
			for i := 0; i < b.N; i++ {
				res, err := cfg.RunOne(context.Background(), experiment.QLEC, 4, uint64(i+1), false)
				if err != nil {
					b.Fatal(err)
				}
				joules = float64(res.TotalEnergy)
			}
			b.ReportMetric(joules, "J")
		})
	}
}

// BenchmarkTheorem2EECPApproximation measures how close the protocols'
// nearest-head clustering gets to the NP-Complete EECP optimum
// (Theorem 2) on instances small enough to solve exactly, reporting the
// worst approximation ratio across iterations.
func BenchmarkTheorem2EECPApproximation(b *testing.B) {
	r := rng.New(6)
	worst := 1.0
	for i := 0; i < b.N; i++ {
		pts := geom.Cube(60).SampleUniformN(r, 10)
		resid := make([]energy.Joules, 10)
		for j := range resid {
			resid[j] = energy.Joules(1 + 4*r.Float64())
		}
		in := &eecp.Instance{
			Points: pts, Residual: resid, K: 3,
			F: eecp.EnergyWeighted(energy.DefaultModel(), 4000), Heads: eecp.MedoidHead,
		}
		opt, err := eecp.Solve(in)
		if err != nil {
			b.Fatal(err)
		}
		// Heuristic: highest-residual spread heads + nearest assignment —
		// the DEEC-flavoured move at miniature scale.
		heads := []int{0}
		for len(heads) < 3 {
			bestIdx, bestScore := -1, -1.0
			for j := range pts {
				nearest := math.Inf(1)
				for _, h := range heads {
					nearest = math.Min(nearest, pts[j].DistSq(pts[h]))
				}
				score := nearest * float64(resid[j])
				if score > bestScore {
					bestIdx, bestScore = j, score
				}
			}
			heads = append(heads, bestIdx)
		}
		assign := make([]int, len(pts))
		for j := range pts {
			bestC, bestD := 0, math.Inf(1)
			for c, h := range heads {
				if d := pts[j].DistSq(pts[h]); d < bestD {
					bestC, bestD = c, d
				}
			}
			assign[j] = bestC
		}
		cost, err := eecp.HeuristicCost(in, assign, heads)
		if err != nil {
			b.Fatal(err)
		}
		if opt.Cost > 0 && cost/opt.Cost > worst {
			worst = cost / opt.Cost
		}
	}
	b.ReportMetric(worst, "worst_ratio")
}

// BenchmarkScalability measures simulator throughput as the network
// grows from the paper's 100 nodes to the §5.3 scale, in packets
// simulated per benchmark op (ns/op then gives time per full 3-round
// run; packets/op shows the workload actually processed).
func BenchmarkScalability(b *testing.B) {
	for _, n := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := benchConfig()
			cfg.N = n
			cfg.Side = 200 * math.Cbrt(float64(n)/100) // constant density
			cfg.K = int(math.Max(2, float64(n)/20))
			cfg.Rounds = 3
			var packets int
			for i := 0; i < b.N; i++ {
				res, err := cfg.RunOne(context.Background(), experiment.QLEC, 4, uint64(i+1), false)
				if err != nil {
					b.Fatal(err)
				}
				packets = res.Generated
			}
			b.ReportMetric(float64(packets), "packets/op")
		})
	}
}

// BenchmarkClusteringGainOverDirect quantifies the paper's §1 premise —
// clustering converts global into local communication — as the energy
// ratio between unclustered direct-to-BS transmission and QLEC on a
// field large enough for the d⁴ multi-path law to matter (400 m cube;
// see EXPERIMENTS.md for why the gap shrinks at M=200).
func BenchmarkClusteringGainOverDirect(b *testing.B) {
	cfg := benchConfig()
	cfg.Side = 400
	var direct, clustered float64
	for i := 0; i < b.N; i++ {
		d, err := cfg.RunOne(context.Background(), experiment.Direct, 6, uint64(i+1), false)
		if err != nil {
			b.Fatal(err)
		}
		q, err := cfg.RunOne(context.Background(), experiment.QLEC, 6, uint64(i+1), false)
		if err != nil {
			b.Fatal(err)
		}
		direct = float64(d.TotalEnergy)
		clustered = float64(q.TotalEnergy)
	}
	b.ReportMetric(direct, "J_direct")
	b.ReportMetric(clustered, "J_qlec")
	b.ReportMetric(direct/clustered, "gain")
}

// BenchmarkRunnerOverhead measures the fixed cost runner.Map adds over
// a plain serial loop on trivial jobs — the price every sweep pays for
// ordering, cancellation and progress plumbing. Compare the two
// sub-benchmarks: the delta is the per-job overhead.
func BenchmarkRunnerOverhead(b *testing.B) {
	const jobs = 256
	work := func(i int) int { return i*i + 1 }
	b.Run("serial-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := make([]int, jobs)
			for j := 0; j < jobs; j++ {
				out[j] = work(j)
			}
			if out[3] != 10 {
				b.Fatal("bad result")
			}
		}
	})
	b.Run("runner-map", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			out, err := runner.Map(ctx, jobs, runner.Options{},
				func(ctx context.Context, j int) (int, error) { return work(j), nil })
			if err != nil || out[3] != 10 {
				b.Fatal("bad result")
			}
		}
	})
}

// BenchmarkKSweepParallel runs the same k sweep on the serial reference
// schedule and the parallel pool; the ratio is the orchestration
// speedup on this machine (results are identical either way — see
// TestSweepsParallelMatchSerial).
func BenchmarkKSweepParallel(b *testing.B) {
	ks := []int{3, 5, 8, 11}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Seeds = []uint64{1, 2}
			cfg.Workers = bc.workers
			for i := 0; i < b.N; i++ {
				if _, err := cfg.RunKSweep(context.Background(), experiment.QLEC, ks, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
